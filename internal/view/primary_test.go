package view

import (
	"strings"
	"testing"

	"ojv/internal/algebra"
	"ojv/internal/fixture"
	"ojv/internal/rel"
)

func mustRSTU(t testing.TB, withFK bool) *rel.Catalog {
	t.Helper()
	cat, err := fixture.RSTU(fixture.RSTUOptions{Rows: 30, Seed: 1, WithFK: withFK})
	if err != nil {
		t.Fatal(err)
	}
	return cat
}

// TestPrimaryDeltaTransformV1 reproduces Figure 2: the bushy ΔV1^D for an
// update to T is (ΔT lo[p(t,u)] U) join[p(r,t)] (R fo[p(r,s)] S).
func TestPrimaryDeltaTransformV1(t *testing.T) {
	cat := mustRSTU(t, false)
	expr, err := BuildPrimaryDelta(cat, fixture.V1Expr(false), "T", false, false)
	if err != nil {
		t.Fatal(err)
	}
	got := expr.String()
	want := "((ΔT lo[T.d=U.d] U) join[R.c=T.c] (R fo[R.b=S.b] S))"
	if got != want {
		t.Errorf("ΔV1^D = %s, want %s", got, want)
	}
}

// TestLeftDeepConversionV1 reproduces Figure 3: the left-deep form is
// ((ΔT lo U) join R) lo S.
func TestLeftDeepConversionV1(t *testing.T) {
	cat := mustRSTU(t, false)
	expr, err := BuildPrimaryDelta(cat, fixture.V1Expr(false), "T", true, false)
	if err != nil {
		t.Fatal(err)
	}
	got := expr.String()
	want := "(((ΔT lo[T.d=U.d] U) join[R.c=T.c] R) lo[R.b=S.b] S)"
	if got != want {
		t.Errorf("left-deep ΔV1^D = %s, want %s", got, want)
	}
	if !IsLeftDeep(expr) {
		t.Error("IsLeftDeep should hold")
	}
}

// TestSimplifyTreeExample10 reproduces Example 10: with the foreign key
// U.tfk→T.tk matching the T-U join, the ΔT lo U join is eliminated,
// leaving (ΔT join R) lo S.
func TestSimplifyTreeExample10(t *testing.T) {
	cat := mustRSTU(t, true)
	expr, err := BuildPrimaryDelta(cat, fixture.V1Expr(true), "T", true, true)
	if err != nil {
		t.Fatal(err)
	}
	got := expr.String()
	want := "((ΔT join[R.c=T.c] R) lo[R.b=S.b] S)"
	if got != want {
		t.Errorf("simplified ΔV1^D = %s, want %s", got, want)
	}
	// Without FK simplification the U join stays.
	expr2, err := BuildPrimaryDelta(cat, fixture.V1Expr(true), "T", true, false)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(expr2.String(), "U") {
		t.Errorf("unsimplified tree should retain U: %s", expr2)
	}
}

// TestPrimaryDeltaForEachTable derives ΔV^D for every base table of V1 and
// checks the structural invariants: the delta leaf is leftmost, the main
// path has only selects/inner/left-outer joins, and the tree is left-deep.
func TestPrimaryDeltaForEachTable(t *testing.T) {
	cat := mustRSTU(t, false)
	for _, table := range []string{"R", "S", "T", "U"} {
		expr, err := BuildPrimaryDelta(cat, fixture.V1Expr(false), table, true, false)
		if err != nil {
			t.Fatalf("%s: %v", table, err)
		}
		if expr == nil {
			t.Fatalf("%s: unexpected empty delta", table)
		}
		if !IsLeftDeep(expr) {
			t.Errorf("%s: not left-deep:\n%s", table, algebra.FormatTree(expr))
		}
		// Leftmost leaf is the delta.
		leaf := expr
		for {
			switch n := leaf.(type) {
			case *algebra.Join:
				leaf = n.Left
			case *algebra.Select:
				leaf = n.Input
			case *algebra.NullIf:
				leaf = n.Input
			case *algebra.Condense:
				leaf = n.Input
			default:
				goto done
			}
		}
	done:
		if d, ok := leaf.(*algebra.DeltaRef); !ok || d.Name != table {
			t.Errorf("%s: leftmost leaf = %v", table, leaf)
		}
		// Main path joins are inner or left-outer only.
		for e := expr; ; {
			switch n := e.(type) {
			case *algebra.Join:
				if n.Kind != algebra.InnerJoin && n.Kind != algebra.LeftOuterJoin {
					t.Errorf("%s: %s join on main path", table, n.Kind)
				}
				e = n.Left
			case *algebra.Select:
				e = n.Input
			case *algebra.NullIf:
				e = n.Input
			case *algebra.Condense:
				e = n.Input
			default:
				goto next
			}
		}
	next:
	}
}

// TestPrimaryDeltaUpdateO checks the transform on V2, where the updated
// table sits in the middle of the join tree under selections.
func TestPrimaryDeltaUpdateO(t *testing.T) {
	cat, err := fixture.COL(fixture.COLOptions{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	expr, err := BuildPrimaryDelta(cat, fixture.V2Expr(), "O", true, false)
	if err != nil {
		t.Fatal(err)
	}
	if !IsLeftDeep(expr) {
		t.Errorf("not left-deep:\n%s", algebra.FormatTree(expr))
	}
	// The σ[O.a>0] selection must survive on the main path (applied to ΔO).
	if !strings.Contains(expr.String(), "O.a>0") {
		t.Errorf("selection on O lost: %s", expr)
	}
}

func TestBuildPrimaryDeltaUnknownTable(t *testing.T) {
	cat := mustRSTU(t, false)
	if _, err := BuildPrimaryDelta(cat, fixture.V1Expr(false), "X", true, false); err == nil {
		t.Error("unknown table must error")
	}
}

func TestDefineValidation(t *testing.T) {
	cat := mustRSTU(t, false)
	// Valid definition.
	if _, err := Define(cat, "v1", fixture.V1Expr(false), fixture.V1Output(cat)); err != nil {
		t.Fatalf("valid view rejected: %v", err)
	}
	// Missing key column in output.
	out := fixture.V1Output(cat)
	var noRK []algebra.ColRef
	for _, c := range out {
		if !(c.Table == "R" && c.Column == "rk") {
			noRK = append(noRK, c)
		}
	}
	if _, err := Define(cat, "bad", fixture.V1Expr(false), noRK); err == nil {
		t.Error("output missing a key column must be rejected")
	}
	// Unknown output column.
	if _, err := Define(cat, "bad", fixture.V1Expr(false), append(out, algebra.Col("R", "nosuch"))); err == nil {
		t.Error("unknown output column must be rejected")
	}
	// Self-join.
	self := &algebra.Join{Kind: algebra.InnerJoin, Left: &algebra.TableRef{Name: "R"}, Right: &algebra.TableRef{Name: "R"}, Pred: algebra.Eq("R", "b", "R", "c")}
	if _, err := Define(cat, "bad", self, nil); err == nil {
		t.Error("self-join must be rejected")
	}
	// Non-null-rejecting predicate.
	nn := &algebra.Select{Input: &algebra.TableRef{Name: "R"}, Pred: algebra.IsNull{Col: algebra.Col("R", "b")}}
	if _, err := Define(cat, "bad", nn, fixture.AllColumns(cat, "R")); err == nil {
		t.Error("IS NULL view predicate must be rejected")
	}
	// Join predicate referencing one side only.
	oneSided := &algebra.Join{Kind: algebra.InnerJoin, Left: &algebra.TableRef{Name: "R"}, Right: &algebra.TableRef{Name: "S"}, Pred: algebra.CmpConst("R", "b", algebra.OpGt, rel.Int(0))}
	if _, err := Define(cat, "bad", oneSided, fixture.AllColumns(cat, "R", "S")); err == nil {
		t.Error("one-sided join predicate must be rejected")
	}
	// Unknown table.
	if _, err := Define(cat, "bad", &algebra.TableRef{Name: "X"}, nil); err == nil {
		t.Error("unknown table must be rejected")
	}
}
