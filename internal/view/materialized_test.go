package view

import (
	"testing"

	"ojv/internal/fixture"
	"ojv/internal/rel"
)

// storageFixture materializes V1 and returns the storage for white-box
// checks of the physical design (view keys, patterns, per-table indexes).
func storageFixture(t *testing.T, opts Options) *Materialized {
	t.Helper()
	_, m := newV1Maintainer(t, false, opts)
	return m.Materialized()
}

func TestViewKeyDeterminedByPattern(t *testing.T) {
	mv := storageFixture(t, Options{})
	seen := make(map[string]bool)
	for _, row := range mv.Rows() {
		k := mv.viewKey(row)
		if seen[k] {
			t.Fatalf("duplicate view key for %s", row)
		}
		seen[k] = true
	}
	if len(seen) != mv.Len() {
		t.Errorf("key count %d != len %d", len(seen), mv.Len())
	}
}

func TestPatternCountsSumToLen(t *testing.T) {
	mv := storageFixture(t, Options{})
	total := 0
	for _, c := range mv.patternCount {
		total += c
	}
	if total != mv.Len() {
		t.Errorf("pattern counts sum to %d, Len = %d", total, mv.Len())
	}
	// Every stored row's pattern corresponds to a normal-form term.
	nf := mv.Definition().NormalForm()
	valid := make(map[uint32]bool)
	for _, term := range nf.Terms {
		valid[mv.patternOf(term.Tables)] = true
	}
	for p, c := range mv.patternCount {
		if c > 0 && !valid[p] {
			t.Errorf("pattern %b has %d rows but matches no term", p, c)
		}
	}
}

func TestTermCardinalityMatchesScan(t *testing.T) {
	mv := storageFixture(t, Options{})
	nf := mv.Definition().NormalForm()
	for _, term := range nf.Terms {
		want := 0
		for _, row := range mv.Rows() {
			if mv.pattern(row) == mv.patternOf(term.Tables) {
				want++
			}
		}
		if got := mv.TermCardinality(term.Tables); got != want {
			t.Errorf("term %s: cardinality %d, scan %d", term.SourceKey(), got, want)
		}
	}
}

func TestPerTableIndexConsistency(t *testing.T) {
	mv := storageFixture(t, Options{})
	if mv.perTable == nil {
		t.Fatal("orphan index should be enabled by default")
	}
	// Every index entry points to a live row that actually contains the
	// tuple, and every row is indexed under each of its non-null tables.
	for table, idx := range mv.perTable {
		for tk, set := range idx {
			for vk := range set {
				row, ok := mv.rows[vk]
				if !ok {
					t.Fatalf("index %s/%x points to missing row", table, tk)
				}
				if rel.EncodeRowCols(row, mv.keyCols[table]) != tk {
					t.Fatalf("index %s entry mismatches row %s", table, row)
				}
			}
		}
	}
	for vk, row := range mv.rows {
		for _, table := range mv.tableOrder {
			if row[mv.witnessCol[table]].IsNull() {
				continue
			}
			tk := rel.EncodeRowCols(row, mv.keyCols[table])
			if _, ok := mv.perTable[table][tk][vk]; !ok {
				t.Fatalf("row %s not indexed under %s", row, table)
			}
		}
	}
}

func TestContainsTupleAgainstScan(t *testing.T) {
	for _, disable := range []bool{false, true} {
		mv := storageFixture(t, Options{DisableOrphanIndex: disable})
		nf := mv.Definition().NormalForm()
		// For every term and a sample of rows, containsTuple must agree
		// with a full scan.
		for _, term := range nf.Terms {
			n := 0
			for _, row := range mv.Rows() {
				if row[mv.witnessCol[term.Tables[0]]].IsNull() {
					continue
				}
				encKeys := make(map[string]string)
				usable := true
				for _, tb := range term.Tables {
					if row[mv.witnessCol[tb]].IsNull() {
						usable = false
						break
					}
					encKeys[tb] = rel.EncodeRowCols(row, mv.keyCols[tb])
				}
				if !usable {
					continue
				}
				if !mv.containsTuple(term.Tables, encKeys) {
					t.Fatalf("disable=%v: row %s not found for its own term %s", disable, row, term.SourceKey())
				}
				n++
				if n > 20 {
					break
				}
			}
		}
		// A fabricated key must not be found.
		tb := nf.AllTables[0]
		enc := map[string]string{tb: rel.EncodeValues(rel.Int(999999))}
		if mv.containsTuple([]string{tb}, enc) {
			t.Errorf("disable=%v: phantom tuple found", disable)
		}
	}
}

func TestInsertRowRejectsDuplicates(t *testing.T) {
	mv := storageFixture(t, Options{})
	row := mv.Rows()[0]
	if err := mv.insertRow(row); err == nil {
		t.Error("duplicate view key must be rejected")
	}
	if _, ok := mv.deleteKey("no-such-key"); ok {
		t.Error("deleteKey of a missing key must report false")
	}
}

func TestMaterializeIsIdempotent(t *testing.T) {
	_, m := newV1Maintainer(t, false, Options{})
	before := m.Materialized().Len()
	if err := m.Materialize(); err != nil {
		t.Fatal(err)
	}
	if m.Materialized().Len() != before {
		t.Errorf("re-materialize changed row count: %d -> %d", before, m.Materialized().Len())
	}
	if err := Check(m); err != nil {
		t.Fatal(err)
	}
}

func TestOrphanKeyRoundTrip(t *testing.T) {
	mv := storageFixture(t, Options{})
	// For an orphan row of some term, orphanKeyFor(row) must equal the
	// row's own view key.
	nf := mv.Definition().NormalForm()
	for _, term := range nf.Terms {
		tiSet := make(map[string]bool)
		for _, tb := range term.Tables {
			tiSet[tb] = true
		}
		pat := mv.patternOf(term.Tables)
		for _, row := range mv.Rows() {
			if mv.pattern(row) != pat {
				continue
			}
			if mv.orphanKeyFor(row, tiSet) != mv.viewKey(row) {
				t.Fatalf("orphan key mismatch for %s (term %s)", row, term.SourceKey())
			}
			// The encoded-keys variant agrees too.
			encKeys := make(map[string]string)
			for _, tb := range term.Tables {
				encKeys[tb] = rel.EncodeRowCols(row, mv.keyCols[tb])
			}
			if mv.orphanKeyFromEnc(tiSet, encKeys) != mv.viewKey(row) {
				t.Fatalf("orphanKeyFromEnc mismatch for %s", row)
			}
			break
		}
	}
}

func TestDefinitionAccessors(t *testing.T) {
	cat := mustRSTU(t, false)
	def, err := Define(cat, "v1", fixture.V1Expr(false), fixture.V1Output(cat))
	if err != nil {
		t.Fatal(err)
	}
	if got := def.Tables(); len(got) != 4 || got[0] != "R" {
		t.Errorf("Tables = %v", got)
	}
	if def.NormalForm() == nil || len(def.NormalForm().Terms) != 7 {
		t.Error("NormalForm accessor")
	}
	if len(def.FullSchema()) != 10 {
		t.Errorf("FullSchema width = %d", len(def.FullSchema()))
	}
	m, err := NewMaintainer(def, Options{DisableOrphanIndex: true})
	if err != nil {
		t.Fatal(err)
	}
	if m.Materialized().Options().DisableOrphanIndex != true {
		t.Error("Options accessor")
	}
	if m.Materialized().Definition() != def {
		t.Error("Definition accessor")
	}
	if m.Aggregated() != nil {
		t.Error("non-aggregate view must have nil Aggregated")
	}
}
