package view

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"ojv/internal/algebra"
	"ojv/internal/exec"
	"ojv/internal/obs"
	"ojv/internal/rel"
)

// Maintainer keeps a materialized view synchronized with its base tables.
// Call OnInsert/OnDelete after the base-table update has been applied to
// the catalog, exactly as the paper assumes ("the base tables have already
// been updated").
type Maintainer struct {
	mv   *Materialized
	agg  *AggMaterialized // non-nil for aggregation views
	def  *Definition
	opts Options
	// planMu guards plans: the cache is populated lazily from paths the
	// Database documents as concurrency-safe (Query answering, EXPLAIN,
	// plan verification), which may race with each other.
	planMu sync.Mutex
	plans  map[planKey]*tablePlan

	// mvEp/aggEp hold the current committed epoch once EnableSnapshots has
	// run (exactly one is used, matching mv/agg); epochSeq is the per-view
	// publish counter and pins the cached snapshot-pin counter. See
	// epoch.go.
	mvEp     atomic.Pointer[mvEpoch]
	aggEp    atomic.Pointer[aggEpoch]
	epochSeq uint64
	pins     *obs.Counter
}

type planKey struct {
	table string
	fkOK  bool
}

// tablePlan is the compiled maintenance plan for updates to one table.
type tablePlan struct {
	table string
	nf    *algebra.NormalForm
	graph *algebra.MaintGraph
	// primary is the ΔV^D expression (left-deep, FK-simplified according to
	// options); nil when the delta is provably empty or no term is directly
	// affected.
	primary  algebra.Expr
	indirect []*indirectPlan
	// shared lists the shareable subtrees of primary in preorder, and
	// sharedKeys indexes them by node for the multi-view cut walk (see
	// shared.go). Both are computed once at plan build, so per-flush DAG
	// construction touches only cached keys.
	shared     []sharedNode
	sharedKeys map[algebra.Expr]string
}

// Graph returns the (possibly FK-reduced) maintenance graph the plan uses.
func (p *tablePlan) Graph() *algebra.MaintGraph { return p.graph }

// PrimaryExpr returns the compiled ΔV^D expression (nil when provably
// empty or when no term is directly affected).
func (p *tablePlan) PrimaryExpr() algebra.Expr { return p.primary }

// IndirectTermCount returns how many indirectly affected terms the plan
// cleans up.
func (p *tablePlan) IndirectTermCount() int { return len(p.indirect) }

// indirectPlan drives the secondary delta for one indirectly affected term.
type indirectPlan struct {
	term  algebra.Term
	tiSet map[string]bool
	// tiMask is the term's table bitmask; parentMasks are the directly
	// affected parents' masks (the disjuncts of the paper's Pi predicate);
	// indirectExtrasMask covers the extra tables of indirectly affected
	// parents (the n(∪Rk) part of Qi in Section 5.3).
	tiMask             uint32
	parentMasks        []uint32
	indirectExtrasMask uint32
	// parents carries the base-table expressions of Section 5.3, one per
	// directly affected parent.
	parents []parentBase
}

// parentBase holds E'ip and qip for one directly affected parent term.
type parentBase struct {
	// exprInsert joins the parent's extra tables with the OLD state of the
	// updated table (T± ⋉la ΔT); exprDelete with the new state (T±).
	exprInsert algebra.Expr
	exprDelete algebra.Expr
	qip        algebra.Pred
}

// MaintStats reports what one maintenance run did.
type MaintStats struct {
	Table         string
	Insert        bool
	DirectTerms   int
	IndirectTerms int
	PrimaryRows   int
	SecondaryRows int
	// SecondaryByTerm maps a term's source key to the orphan rows added or
	// removed for it. For a modify it sums the delete- and insert-pass
	// contributions per term.
	SecondaryByTerm map[string]int
	// UndoRecords counts the undo-log records the run staged before
	// committing (one per view mutation).
	UndoRecords int
	// Committed reports that the run's changeset committed. Runs that
	// surface an error roll back and never produce stats, so this is true
	// on every MaintStats the maintainer returns; it exists so callers that
	// aggregate stats (ojbench) can count commits against rollbacks.
	Committed bool
}

// NewMaintainer registers a maintainer over a freshly materialized view.
func NewMaintainer(def *Definition, opts Options) (*Maintainer, error) {
	m := &Maintainer{def: def, opts: opts, plans: make(map[planKey]*tablePlan)}
	if def.Agg != nil {
		am, err := newAggMaterialized(def, opts)
		if err != nil {
			return nil, err
		}
		m.agg = am
	} else {
		mv, err := newMaterialized(def, opts)
		if err != nil {
			return nil, err
		}
		m.mv = mv
	}
	return m, nil
}

// Materialized returns the stored view (nil for aggregation views).
func (m *Maintainer) Materialized() *Materialized { return m.mv }

// Aggregated returns the stored aggregation view (nil otherwise).
func (m *Maintainer) Aggregated() *AggMaterialized { return m.agg }

// Materialize (re)computes the stored contents from scratch. When
// snapshots are enabled the rebuilt state publishes as a fresh full epoch
// (the stored maps were replaced wholesale, so incremental publication
// does not apply).
func (m *Maintainer) Materialize() error {
	var err error
	if m.agg != nil {
		err = m.agg.Materialize()
	} else {
		err = m.mv.Materialize()
	}
	if err == nil && m.snapshotsEnabled() {
		m.publishFull()
	}
	return err
}

// Plan returns the compiled maintenance plan for a table (building and
// caching it on first use). fkOK declares that the update is a plain
// insert/delete batch for which the Section 6 foreign-key optimizations are
// sound. Plan is safe for concurrent use.
func (m *Maintainer) Plan(table string, fkOK bool) (*tablePlan, error) {
	fkOK = fkOK && !m.opts.DisableFKGraph
	key := planKey{table: table, fkOK: fkOK}
	m.planMu.Lock()
	defer m.planMu.Unlock()
	if p, ok := m.plans[key]; ok {
		return p, nil
	}
	p, err := m.buildPlan(table, fkOK)
	if err != nil {
		return nil, err
	}
	m.plans[key] = p
	return p, nil
}

func (m *Maintainer) buildPlan(table string, fkOK bool) (*tablePlan, error) {
	nf := m.def.nf
	opts := algebra.MaintOptions{ExploitFKs: true, FKs: m.def.cat}
	if !fkOK {
		nf = m.def.nfNoFK
		opts = algebra.MaintOptions{}
	}
	graph, err := nf.MaintenanceGraph(table, opts)
	if err != nil {
		return nil, err
	}
	p := &tablePlan{table: table, nf: nf, graph: graph}
	if len(graph.DirectTerms()) > 0 {
		expr, err := BuildPrimaryDelta(m.def.cat, m.def.Expr, table,
			!m.opts.DisableLeftDeep, fkOK && !m.opts.DisableFKSimplify)
		if err != nil {
			return nil, err
		}
		p.primary = expr // may be nil: FK-simplified to empty
	}
	if p.primary != nil {
		p.shared, p.sharedKeys = collectShareable(p.primary)
	}
	bits := m.tableBits()
	for _, ti := range graph.IndirectTerms() {
		ip, err := m.buildIndirectPlan(nf, graph, ti, bits)
		if err != nil {
			return nil, err
		}
		p.indirect = append(p.indirect, ip)
	}
	// Process larger terms first: when a deletion creates both an {R,S}
	// orphan and an {R} candidate, the {R,S} orphan must be in the view
	// before {R}'s containment check runs, so the subsumed {R} tuple is not
	// inserted.
	sort.SliceStable(p.indirect, func(i, j int) bool {
		return len(p.indirect[i].term.Tables) > len(p.indirect[j].term.Tables)
	})
	if m.shouldVerify() {
		if err := m.VerifyPlan(p, fkOK); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// tableBits assigns each table its bit, shared with the view storage.
func (m *Maintainer) tableBits() map[string]uint {
	bits := make(map[string]uint, len(m.def.tables))
	for i, t := range m.def.tables {
		bits[t] = uint(i)
	}
	return bits
}

func maskOf(tables []string, bits map[string]uint) uint32 {
	var p uint32
	for _, t := range tables {
		p |= 1 << bits[t]
	}
	return p
}

func (m *Maintainer) buildIndirectPlan(nf *algebra.NormalForm, graph *algebra.MaintGraph, termIdx int, bits map[string]uint) (*indirectPlan, error) {
	term := nf.Terms[termIdx]
	ip := &indirectPlan{
		term:   term,
		tiSet:  make(map[string]bool, len(term.Tables)),
		tiMask: maskOf(term.Tables, bits),
	}
	for _, t := range term.Tables {
		ip.tiSet[t] = true
	}
	for _, pk := range graph.IndirectParents[termIdx] {
		for _, t := range nf.Terms[pk].Tables {
			if !ip.tiSet[t] {
				ip.indirectExtrasMask |= 1 << bits[t]
			}
		}
	}
	for _, pk := range graph.DirectParents[termIdx] {
		parent := nf.Terms[pk]
		ip.parentMasks = append(ip.parentMasks, maskOf(parent.Tables, bits))
		pb, err := m.buildParentBase(term, parent, graph.Updated)
		if err != nil {
			return nil, err
		}
		ip.parents = append(ip.parents, pb)
	}
	return ip, nil
}

// buildParentBase derives the Section 5.3 expressions for one directly
// affected parent Ek of an indirect term Ei.
//
// The parent's predicate pk is split into q(Rip) (conjuncts over the
// parent's extra tables only), q(T) (over the updated table only),
// q(Rip,T) (linking extras to T), and qip = q(Si,Rip,T) (linking Ei's
// tables to the extras or T). E'ip is then the join of the extras with the
// appropriate state of T. We deviate from the paper's presentation in one
// inessential way: the paper semijoins the extras against the T-part,
// yielding an Rip-schema relation, which cannot support a qip that links
// Si directly to T; we use a regular join so E'ip carries both the extras'
// and T's columns. Anti-join existence semantics make the two equivalent
// whenever the paper's form is well-defined.
func (m *Maintainer) buildParentBase(ti, parent algebra.Term, updated string) (parentBase, error) {
	tiSet := make(map[string]bool, len(ti.Tables))
	for _, t := range ti.Tables {
		tiSet[t] = true
	}
	var rip []string
	for _, t := range parent.Tables {
		if !tiSet[t] && t != updated {
			rip = append(rip, t)
		}
	}
	ripSet := make(map[string]bool, len(rip))
	for _, t := range rip {
		ripSet[t] = true
	}
	var qRip, qT, qRipT, qip []algebra.Pred
	for _, c := range algebra.Conjuncts(parent.Pred) {
		tabs := algebra.PredTables(c)
		var hasTi, hasRip, hasT bool
		for _, t := range tabs {
			switch {
			case tiSet[t]:
				hasTi = true
			case ripSet[t]:
				hasRip = true
			case t == updated:
				hasT = true
			}
		}
		switch {
		case hasTi && (hasRip || hasT):
			qip = append(qip, c)
		case hasRip && hasT:
			qRipT = append(qRipT, c)
		case hasRip && !hasTi && !hasT:
			qRip = append(qRip, c)
		case hasT && !hasTi && !hasRip:
			qT = append(qT, c)
		}
	}
	mkTPart := func(leaf algebra.Expr) algebra.Expr {
		if len(qT) == 0 {
			return leaf
		}
		return &algebra.Select{Input: leaf, Pred: algebra.MakeAnd(qT...)}
	}
	build := func(tLeaf algebra.Expr) algebra.Expr {
		if len(rip) == 0 {
			return mkTPart(tLeaf)
		}
		leaves := make([]algebra.Expr, 0, len(rip)+1)
		for _, r := range rip {
			leaves = append(leaves, &algebra.TableRef{Name: r})
		}
		leaves = append(leaves, mkTPart(tLeaf))
		conj := append(append([]algebra.Pred(nil), qRip...), qRipT...)
		return buildJoinTree(leaves, conj)
	}
	return parentBase{
		exprInsert: build(&algebra.OldTableRef{Name: updated}),
		exprDelete: build(&algebra.TableRef{Name: updated}),
		qip:        algebra.MakeAnd(qip...),
	}, nil
}

// buildJoinTree folds leaves into a left-deep inner-join tree, greedily
// picking, at each step, a leaf connected to the tree so far by some
// conjunct; unconnected leaves are cross-joined last and leftover conjuncts
// become a final selection.
func buildJoinTree(leaves []algebra.Expr, conjuncts []algebra.Pred) algebra.Expr {
	used := make([]bool, len(conjuncts))
	inTree := algebra.TableSet(leaves[0])
	tree := leaves[0]
	remaining := append([]algebra.Expr(nil), leaves[1:]...)
	connects := func(e algebra.Expr) []int {
		leafTabs := algebra.TableSet(e)
		var out []int
		for i, c := range conjuncts {
			if used[i] {
				continue
			}
			var hasTree, hasLeaf, foreign bool
			for _, t := range algebra.PredTables(c) {
				switch {
				case inTree[t]:
					hasTree = true
				case leafTabs[t]:
					hasLeaf = true
				default:
					foreign = true
				}
			}
			if hasTree && hasLeaf && !foreign {
				out = append(out, i)
			}
		}
		return out
	}
	for len(remaining) > 0 {
		picked := -1
		var predIdx []int
		for i, e := range remaining {
			if idx := connects(e); len(idx) > 0 {
				picked, predIdx = i, idx
				break
			}
		}
		if picked < 0 {
			picked = 0 // cross join
		}
		leaf := remaining[picked]
		remaining = append(remaining[:picked], remaining[picked+1:]...)
		var ps []algebra.Pred
		for _, i := range predIdx {
			used[i] = true
			ps = append(ps, conjuncts[i])
		}
		tree = &algebra.Join{Kind: algebra.InnerJoin, Left: tree, Right: leaf, Pred: algebra.MakeAnd(ps...)}
		for t := range algebra.TableSet(leaf) {
			inTree[t] = true
		}
	}
	var leftover []algebra.Pred
	for i, c := range conjuncts {
		if !used[i] {
			leftover = append(leftover, c)
		}
	}
	if len(leftover) > 0 {
		tree = &algebra.Select{Input: tree, Pred: algebra.MakeAnd(leftover...)}
	}
	return tree
}

// OnInsert maintains the view after rows were inserted into table. The run
// is atomic: on error the view rolls back to its pre-call state.
func (m *Maintainer) OnInsert(table string, delta []rel.Row) (*MaintStats, error) {
	return m.atomically(func(cs *Changeset) (*MaintStats, error) {
		return m.ApplyInsert(cs, table, delta)
	})
}

// OnDelete maintains the view after rows were deleted from table. The run
// is atomic: on error the view rolls back to its pre-call state.
func (m *Maintainer) OnDelete(table string, delta []rel.Row) (*MaintStats, error) {
	return m.atomically(func(cs *Changeset) (*MaintStats, error) {
		return m.ApplyDelete(cs, table, delta)
	})
}

// OnModify maintains the view for an update decomposed into delete+insert.
// The foreign-key optimizations are disabled, per the first exclusion of
// Section 6. Both passes stage into one changeset, so a failure between or
// within them rolls the whole modify back.
func (m *Maintainer) OnModify(table string, deleted, inserted []rel.Row) (*MaintStats, error) {
	return m.atomically(func(cs *Changeset) (*MaintStats, error) {
		return m.ApplyModify(cs, table, deleted, inserted)
	})
}

// Footprint returns every base table a maintenance run of this view may
// read or write: the view's own tables plus, one FK hop out, the tables
// their declared foreign keys reference — the Section 6 optimizations let
// a plan probe an FK parent that is not itself part of the view. The
// result is sorted and duplicate-free. The flush coordinator's conflict
// analysis uses it to decide which views can maintain concurrently.
func (m *Maintainer) Footprint() []string {
	seen := make(map[string]bool)
	for _, t := range m.def.tables {
		seen[t] = true
		for _, fk := range m.def.cat.ForeignKeys(t) {
			seen[fk.RefTable] = true
		}
	}
	out := make([]string, 0, len(seen))
	for t := range seen {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// atomically runs one staged maintenance pass in a fresh changeset,
// committing on success and rolling back on error.
func (m *Maintainer) atomically(f func(*Changeset) (*MaintStats, error)) (*MaintStats, error) {
	cs := m.Begin()
	stats, err := f(cs)
	if err != nil {
		if rbErr := m.RollbackStaged(cs); rbErr != nil {
			return nil, fmt.Errorf("%v; additionally: %w", err, rbErr)
		}
		return nil, err
	}
	m.CommitStaged(cs, stats)
	return stats, nil
}

// CommitStaged commits a staged changeset, completing stats with the undo
// count and commit flag. Commit gets its own root span (attrs: view,
// undo_records) so trace consumers can separate maintenance work from
// transaction bookkeeping; the undo-record and commit counters publish to
// the registry here. Used by atomically and by the Database, which commits
// several views' staged changesets together.
func (m *Maintainer) CommitStaged(cs *Changeset, stats *MaintStats) {
	stats.UndoRecords = cs.Len()
	commit := m.opts.Tracer.StartSpan("changeset.commit").
		SetStr("view", m.def.Name).SetInt("undo_records", int64(stats.UndoRecords))
	cs.Commit()
	m.publishEpoch()
	commit.End()
	m.opts.Metrics.Add("view.undo.records", int64(stats.UndoRecords))
	m.opts.Metrics.Add("view.commits", 1)
	stats.Committed = true
}

// RollbackStaged rolls a staged changeset back under a root rollback span
// (attrs: view, undo_records) and counts the rollback in the registry.
func (m *Maintainer) RollbackStaged(cs *Changeset) error {
	rb := m.opts.Tracer.StartSpan("changeset.rollback").
		SetStr("view", m.def.Name).SetInt("undo_records", int64(cs.Len()))
	err := cs.Rollback()
	rb.End()
	m.opts.Metrics.Add("view.rollbacks", 1)
	return err
}

// ApplyInsert stages the maintenance for an insert batch into cs without
// committing; the caller owns Commit/Rollback. The Database uses this to
// make one base-table update atomic across every registered view.
func (m *Maintainer) ApplyInsert(cs *Changeset, table string, delta []rel.Row) (*MaintStats, error) {
	return m.ApplyInsertShared(cs, table, delta, nil)
}

// ApplyInsertShared is ApplyInsert with shared-subtree bindings: bound maps
// cut nodes of this view's plan to tee handles over a multi-view producer
// (see PlanShared). nil bound is the plain per-view path.
func (m *Maintainer) ApplyInsertShared(cs *Changeset, table string, delta []rel.Row, bound map[algebra.Expr]exec.Source) (*MaintStats, error) {
	root := m.startMaintSpan("insert", table)
	defer root.End()
	return m.apply(cs, root, table, delta, true, true, bound)
}

// ApplyDelete stages the maintenance for a delete batch into cs without
// committing.
func (m *Maintainer) ApplyDelete(cs *Changeset, table string, delta []rel.Row) (*MaintStats, error) {
	return m.ApplyDeleteShared(cs, table, delta, nil)
}

// ApplyDeleteShared is ApplyDelete with shared-subtree bindings (see
// ApplyInsertShared).
func (m *Maintainer) ApplyDeleteShared(cs *Changeset, table string, delta []rel.Row, bound map[algebra.Expr]exec.Source) (*MaintStats, error) {
	root := m.startMaintSpan("delete", table)
	defer root.End()
	return m.apply(cs, root, table, delta, false, true, bound)
}

// ApplyModify stages both passes of a decomposed modify into cs without
// committing, merging the two passes' statistics.
func (m *Maintainer) ApplyModify(cs *Changeset, table string, deleted, inserted []rel.Row) (*MaintStats, error) {
	return m.ApplyModifyShared(cs, table, deleted, inserted, nil, nil)
}

// ApplyModifyShared is ApplyModify with shared-subtree bindings, one map
// per pass: a modify decomposes into a delete pass then an insert pass, and
// each pass evaluates its own plan, so each needs its own handles.
func (m *Maintainer) ApplyModifyShared(cs *Changeset, table string, deleted, inserted []rel.Row, boundDel, boundIns map[algebra.Expr]exec.Source) (*MaintStats, error) {
	root := m.startMaintSpan("modify", table)
	defer root.End()
	del := root.Child("pass.delete")
	s1, err := m.apply(cs, del, table, deleted, false, false, boundDel)
	del.End()
	if err != nil {
		return nil, err
	}
	if err := cs.fail("modify-between-passes"); err != nil {
		return nil, err
	}
	ins := root.Child("pass.insert")
	s2, err := m.apply(cs, ins, table, inserted, true, false, boundIns)
	ins.End()
	if err != nil {
		return nil, err
	}
	return mergeStats(s1, s2), nil
}

// startMaintSpan opens the root span of one maintenance run. Returns nil
// (a no-op span) when tracing is disabled.
func (m *Maintainer) startMaintSpan(op, table string) *obs.Span {
	root := m.opts.Tracer.StartSpan("view.maintain")
	if root == nil {
		return nil
	}
	strategy := "from-view"
	if m.opts.Strategy == StrategyFromBase {
		strategy = "from-base"
	}
	return root.SetStr("view", m.def.Name).SetStr("table", table).
		SetStr("op", op).SetStr("strategy", strategy).
		SetInt("parallelism", int64(m.workers()))
}

// mergeStats combines the delete-pass and insert-pass statistics of a
// decomposed modify into one report: row counts sum (including per-term
// secondary counts) and the term counts take the larger pass, so neither
// pass's plan shape is dropped.
// AccumulateStats folds one maintenance run's stats into a batch
// accumulator (nil starts a fresh one). Row counts and per-term orphan
// accounting sum across the runs; Table collapses to "" when runs span
// tables; the term counts keep their maximum, mirroring mergeStats.
func AccumulateStats(acc, s *MaintStats) *MaintStats {
	if acc == nil {
		out := *s
		out.SecondaryByTerm = make(map[string]int, len(s.SecondaryByTerm))
		for k, n := range s.SecondaryByTerm {
			out.SecondaryByTerm[k] = n
		}
		return &out
	}
	if acc.Table != s.Table {
		acc.Table = ""
	}
	acc.PrimaryRows += s.PrimaryRows
	acc.SecondaryRows += s.SecondaryRows
	if s.DirectTerms > acc.DirectTerms {
		acc.DirectTerms = s.DirectTerms
	}
	if s.IndirectTerms > acc.IndirectTerms {
		acc.IndirectTerms = s.IndirectTerms
	}
	for k, n := range s.SecondaryByTerm {
		acc.SecondaryByTerm[k] += n
	}
	return acc
}

func mergeStats(s1, s2 *MaintStats) *MaintStats {
	out := *s2
	out.PrimaryRows += s1.PrimaryRows
	out.SecondaryRows += s1.SecondaryRows
	if s1.DirectTerms > out.DirectTerms {
		out.DirectTerms = s1.DirectTerms
	}
	if s1.IndirectTerms > out.IndirectTerms {
		out.IndirectTerms = s1.IndirectTerms
	}
	out.SecondaryByTerm = make(map[string]int, len(s1.SecondaryByTerm)+len(s2.SecondaryByTerm))
	for k, n := range s1.SecondaryByTerm {
		out.SecondaryByTerm[k] += n
	}
	for k, n := range s2.SecondaryByTerm {
		out.SecondaryByTerm[k] += n
	}
	return &out
}

func (m *Maintainer) apply(cs *Changeset, span *obs.Span, table string, delta []rel.Row, isInsert, fkOK bool, bound map[algebra.Expr]exec.Source) (*MaintStats, error) {
	stats := &MaintStats{Table: table, Insert: isInsert, SecondaryByTerm: make(map[string]int)}
	// Publish the run's row accounting to the registry on every exit path
	// (including aborted runs: the invariant tests snapshot per attempt).
	defer func() {
		m.opts.Metrics.Add("view.rows.primary", int64(stats.PrimaryRows))
		m.opts.Metrics.Add("view.rows.secondary", int64(stats.SecondaryRows))
	}()
	if len(delta) == 0 {
		return stats, nil
	}
	// The plan span also covers the cheap preparatory checks, so the phase
	// spans tile the run as tightly as possible (the golden acceptance is
	// that phase durations sum to within a few percent of the root).
	planSpan := span.Child("plan")
	referenced := false
	for _, t := range m.def.tables {
		if t == table {
			referenced = true
		}
	}
	if !referenced {
		planSpan.End()
		return stats, nil
	}
	plan, err := m.Plan(table, fkOK)
	planSpan.End()
	if err != nil {
		return nil, err
	}
	stats.DirectTerms = len(plan.graph.DirectTerms())
	stats.IndirectTerms = len(plan.indirect)

	// The eval span covers execution-context construction too; the executor
	// attaches its per-operator pipeline spans beneath it.
	evalSpan := span.Child("primary.eval")
	ctx := &exec.Context{
		Catalog:       m.def.cat,
		Deltas:        map[string][]rel.Row{table: delta},
		DeltaIsInsert: isInsert,
		Parallelism:   m.opts.Parallelism,
		BatchSize:     m.opts.BatchSize,
		Metrics:       m.opts.Metrics,
		Span:          evalSpan,
		Bound:         bound,
	}
	// The full-width primary delta is needed by aggregation, by the
	// deletion-case view cleanup, and by from-base candidate computation.
	// The insertion-case view cleanup and indirect-free plans read only the
	// projected rows, so those paths stream the delta batch by batch and
	// project each batch straight to the output schema — the wide
	// intermediate never materializes.
	useView := m.opts.Strategy != StrategyFromBase
	needPrimary := m.agg != nil || (len(plan.indirect) > 0 && !(useView && isInsert))
	var primary exec.Relation
	var projected []rel.Row
	primaryRows := 0
	var primaryBatches int64
	if plan.primary != nil {
		if needPrimary {
			primary, primaryBatches, err = evalCounted(ctx, plan.primary)
			if err != nil {
				evalSpan.End()
				return nil, err
			}
			primaryRows = len(primary.Rows)
		} else {
			projected, primaryRows, primaryBatches, err = m.streamProjected(ctx, plan.primary)
			if err != nil {
				evalSpan.End()
				return nil, err
			}
		}
	}
	evalSpan.SetInt("rows", int64(primaryRows)).SetInt("batches", primaryBatches)
	evalSpan.End()
	stats.PrimaryRows = primaryRows

	if m.agg != nil {
		return stats, m.applyAgg(cs, span, ctx, plan, primary, isInsert, stats)
	}

	// Step 1: apply the primary delta to the view.
	applySpan := span.Child("primary.apply")
	if needPrimary {
		projected, err = projectToOutput(primary, m.def, m.mv.schema)
		if err != nil {
			applySpan.End()
			return nil, err
		}
	}
	if isInsert {
		for _, row := range projected {
			if err := cs.insertRow("primary-insert", row); err != nil {
				applySpan.End()
				return nil, err
			}
		}
	} else {
		for _, row := range projected {
			_, ok, err := cs.deleteKey("primary-delete", m.mv.viewKey(row))
			if err != nil {
				applySpan.End()
				return nil, err
			}
			if !ok {
				applySpan.End()
				return nil, fmt.Errorf("view %s: primary delta row not found for deletion: %s", m.def.Name, row)
			}
		}
	}
	applySpan.SetInt("rows", int64(len(projected)))
	applySpan.End()

	// Step 2: compute and apply the secondary delta.
	if len(plan.indirect) == 0 {
		return stats, nil
	}
	sec := span.Child("secondary")
	defer sec.End()
	if useView && isInsert {
		// Insertion case via the view: the cleanups for all indirect terms
		// are combined into a single pass over the primary delta — the
		// direction the paper's future-work section sketches (combining the
		// ΔV^I computations for different terms by reusing partial results;
		// here the shared work is the per-row term classification).
		sec.SetStr("source", "view-combined")
		counts, err := m.secondaryInsertCombined(cs, plan.indirect, projected)
		if err != nil {
			return nil, err
		}
		for key, n := range counts {
			stats.SecondaryByTerm[key] = n
			stats.SecondaryRows += n
		}
		sec.SetInt("rows", int64(stats.SecondaryRows))
		return stats, nil
	}
	if useView {
		// Deletion case via the view: terms are processed strictly in plan
		// order (larger terms first) because one term's new orphan changes a
		// later term's containment check — see buildPlan.
		sec.SetStr("source", "view")
		for _, ip := range plan.indirect {
			ts := sec.Child("term").SetStr("term", ip.term.SourceKey())
			n, err := m.secondaryFromView(cs, ip, primary, projected, isInsert)
			ts.SetInt("rows", int64(n))
			ts.End()
			if err != nil {
				return nil, err
			}
			stats.SecondaryByTerm[ip.term.SourceKey()] = n
			stats.SecondaryRows += n
		}
		sec.SetInt("rows", int64(stats.SecondaryRows))
		return stats, nil
	}
	// From-base cleanup: each term's candidate computation reads only the
	// catalog and the primary delta — by Theorem 1 the net contributions of
	// different terms are independent — so the computations run in parallel.
	// View mutations stay serial, in plan order.
	sec.SetStr("source", "base")
	cands, err := m.secondaryCandidatesAll(ctx, sec, plan.indirect, primary, isInsert)
	if err != nil {
		return nil, err
	}
	for i, ip := range plan.indirect {
		ts := sec.Child("term.apply").SetStr("term", ip.term.SourceKey())
		n, err := m.applySecondaryFromBase(cs, ip, cands[i], isInsert)
		ts.SetInt("rows", int64(n))
		ts.End()
		if err != nil {
			return nil, err
		}
		stats.SecondaryByTerm[ip.term.SourceKey()] = n
		stats.SecondaryRows += n
	}
	sec.SetInt("rows", int64(stats.SecondaryRows))
	return stats, nil
}

// streamProjected evaluates the primary delta as a batch pipeline,
// projecting every batch straight to the view's output schema: only the
// projected rows accumulate, the full-width delta relation never exists.
// Returns the projected rows, the wide row count and the batch count.
func (m *Maintainer) streamProjected(ctx *exec.Context, e algebra.Expr) ([]rel.Row, int, int64, error) {
	src, err := exec.NewPipeline(ctx, e)
	if err != nil {
		return nil, 0, 0, err
	}
	if err := src.Open(); err != nil {
		src.Close()
		return nil, 0, 0, err
	}
	schema := src.Schema()
	var projected []rel.Row
	total := 0
	var batches int64
	var b exec.Batch
	for {
		ok, err := src.Next(&b)
		if err != nil {
			src.Close()
			return nil, 0, 0, err
		}
		if !ok {
			break
		}
		total += b.Len()
		batches++
		//ojvlint:ignore rowalias projectToOutput copies every row it keeps before this frame is refilled by the next Next
		rows, err := projectToOutput(exec.Relation{Schema: schema, Rows: b.Rows}, m.def, m.mv.schema)
		if err != nil {
			src.Close()
			return nil, 0, 0, err
		}
		projected = append(projected, rows...)
	}
	if err := src.Close(); err != nil {
		return nil, 0, 0, err
	}
	return projected, total, batches, nil
}

// evalCounted is exec.Eval with a batch count: it drains the pipeline into
// a Relation while counting the batches served, so the primary.eval span
// can report batch granularity alongside rows (ojexplain -stats).
func evalCounted(ctx *exec.Context, e algebra.Expr) (exec.Relation, int64, error) {
	src, err := exec.NewPipeline(ctx, e)
	if err != nil {
		return exec.Relation{}, 0, err
	}
	if err := src.Open(); err != nil {
		src.Close()
		return exec.Relation{}, 0, err
	}
	out := exec.Relation{Schema: src.Schema()}
	var batches int64
	var b exec.Batch
	for {
		ok, err := src.Next(&b)
		if err != nil {
			src.Close()
			return exec.Relation{}, 0, err
		}
		if !ok {
			break
		}
		batches++
		// Rows are shared immutable references; the batch container is
		// scratch, so copy the references out before the next Next.
		out.Rows = append(out.Rows, b.Rows...)
	}
	if err := src.Close(); err != nil {
		return exec.Relation{}, 0, err
	}
	return out, batches, nil
}

// workers resolves Options.Parallelism the same way exec.Context does:
// non-positive means runtime.GOMAXPROCS(0), 1 forces serial maintenance.
func (m *Maintainer) workers() int {
	if m.opts.Parallelism <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return m.opts.Parallelism
}

// secondaryCandidatesAll computes every indirect term's surviving ΔDi
// candidates, in parallel across terms when parallelism allows. The result
// is indexed like plans; the first error in term order wins. Per-term
// candidate spans attach to sec concurrently (Span.Child is mutex-guarded).
func (m *Maintainer) secondaryCandidatesAll(ctx *exec.Context, sec *obs.Span, plans []*indirectPlan, primary exec.Relation, isInsert bool) ([]exec.Relation, error) {
	cands := make([]exec.Relation, len(plans))
	errs := make([]error, len(plans))
	parallelEach(m.workers(), len(plans), func(i int) {
		ts := sec.Child("term.candidates").SetStr("term", plans[i].term.SourceKey())
		cands[i], errs[i] = m.secondaryCandidatesFromBase(ctx, plans[i], primary, isInsert)
		ts.SetInt("rows", int64(len(cands[i].Rows)))
		ts.End()
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return cands, nil
}

// parallelEach runs fn(i) for every i in [0,n) on up to workers goroutines.
// fn must be safe for concurrent invocation at distinct indexes.
func parallelEach(workers, n int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
