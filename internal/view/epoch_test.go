package view

import (
	"errors"
	"strings"
	"testing"

	"ojv/internal/rel"
)

func fingerprintRows(rows []rel.Row) string {
	var sb strings.Builder
	for _, r := range rows {
		sb.WriteString(rel.EncodeValues(r...))
		sb.WriteByte('\n')
	}
	return sb.String()
}

// TestViewEpochPinnedAcrossCommits pins a snapshot, runs several committed
// maintenance passes, and verifies the pinned epoch still reads the state
// it was published with while fresh snapshots track the live view.
func TestViewEpochPinnedAcrossCommits(t *testing.T) {
	cat, m := newV1Maintainer(t, false, Options{})
	if m.Snapshot() != nil {
		t.Fatal("snapshot exists before EnableSnapshots")
	}
	m.EnableSnapshots()
	pinned := m.Snapshot()
	if pinned == nil {
		t.Fatal("no snapshot after EnableSnapshots")
	}
	wantPinned := fingerprintRows(pinned.SortedRows())
	if wantPinned != fingerprintRows(m.Materialized().SortedRows()) {
		t.Fatal("initial epoch does not match the stored view")
	}

	lastEpoch := pinned.Epoch()
	for round := int64(0); round < 5; round++ {
		runInsert(t, cat, m, "R", insertRowsFor(cat, "R", 4, 100+round, false))
		runDelete(t, cat, m, "S", deletableKeys(t, cat, "S", 1, false))

		cur := m.Snapshot()
		if cur.Epoch() <= lastEpoch {
			t.Fatalf("epoch not monotonic: %d then %d", lastEpoch, cur.Epoch())
		}
		lastEpoch = cur.Epoch()
		if got := fingerprintRows(cur.SortedRows()); got != fingerprintRows(m.Materialized().SortedRows()) {
			t.Fatalf("round %d: snapshot diverged from stored view", round)
		}
		if cur.Len() != m.Materialized().Len() {
			t.Fatalf("round %d: snapshot Len %d != view Len %d", round, cur.Len(), m.Materialized().Len())
		}
	}
	if got := fingerprintRows(pinned.SortedRows()); got != wantPinned {
		t.Fatal("pinned epoch changed under maintenance")
	}
}

// TestViewEpochRollbackPublishesNothing injects a fault mid-run and checks
// that the failed (rolled back) run neither publishes a new epoch nor
// corrupts the next successful publish.
func TestViewEpochRollbackPublishesNothing(t *testing.T) {
	var failing bool
	opts := Options{FailPoint: func(site string) error {
		if failing {
			return errors.New("injected at " + site)
		}
		return nil
	}}
	cat, m := newV1Maintainer(t, false, opts)
	m.EnableSnapshots()
	before := m.Snapshot()
	beforeFP := fingerprintRows(before.SortedRows())

	failing = true
	rows := insertRowsFor(cat, "R", 6, 300, false)
	if err := cat.Insert("R", rows); err != nil {
		t.Fatal(err)
	}
	if _, err := m.OnInsert("R", rows); err == nil {
		t.Fatal("expected injected fault")
	}
	if err := cat.RollbackInsert("R", rows); err != nil {
		t.Fatal(err)
	}
	after := m.Snapshot()
	if after.Epoch() != before.Epoch() {
		t.Fatalf("rolled-back run published an epoch: %d -> %d", before.Epoch(), after.Epoch())
	}
	if fingerprintRows(after.SortedRows()) != beforeFP {
		t.Fatal("rolled-back run changed the published state")
	}

	// The poisoned dirty keys must resolve cleanly on the next real commit.
	failing = false
	runInsert(t, cat, m, "R", insertRowsFor(cat, "R", 3, 301, false))
	cur := m.Snapshot()
	if got := fingerprintRows(cur.SortedRows()); got != fingerprintRows(m.Materialized().SortedRows()) {
		t.Fatal("post-rollback publish diverged from stored view")
	}
}

// TestViewEpochTermCardinality checks the per-term counters ride along with
// the epoch: a pinned snapshot keeps the old cardinalities.
func TestViewEpochTermCardinality(t *testing.T) {
	cat, m := newV1Maintainer(t, false, Options{})
	m.EnableSnapshots()
	pinned := m.Snapshot()
	tables := m.Materialized().tableOrder
	before := make([]int, len(tables))
	for i := range tables {
		before[i] = pinned.TermCardinality(tables[:i+1])
	}
	runInsert(t, cat, m, "R", insertRowsFor(cat, "R", 8, 200, false))
	for i := range tables {
		if got := pinned.TermCardinality(tables[:i+1]); got != before[i] {
			t.Fatalf("pinned TermCardinality(%v) changed: %d -> %d", tables[:i+1], before[i], got)
		}
	}
	cur := m.Snapshot()
	for i := range tables {
		if got, want := cur.TermCardinality(tables[:i+1]), m.Materialized().TermCardinality(tables[:i+1]); got != want {
			t.Fatalf("current TermCardinality(%v) = %d, want %d", tables[:i+1], got, want)
		}
	}
}

// TestAggEpochPinnedAcrossCommits exercises epochs over an aggregation
// view, where live groups mutate in place and must be cloned at publish.
func TestAggEpochPinnedAcrossCommits(t *testing.T) {
	cat, m := newAggMaintainer(t, false)
	m.EnableSnapshots()
	pinned := m.Snapshot()
	wantPinned := fingerprintRows(pinned.Rows())

	for i := int64(0); i < 6; i++ {
		rows := []rel.Row{{rel.Int(3000 + i), rel.Int(i % 7)}}
		runInsert(t, cat, m, "C", rows)
		oRows := []rel.Row{{rel.Int(3000 + i), rel.Int(9000 + i), rel.Int(i)}}
		runInsert(t, cat, m, "O", oRows)
	}
	if got := fingerprintRows(pinned.Rows()); got != wantPinned {
		t.Fatal("pinned aggregation epoch changed under maintenance (groups aliased?)")
	}
	cur := m.Snapshot()
	if got := fingerprintRows(cur.Rows()); got != fingerprintRows(m.Aggregated().Rows()) {
		t.Fatal("current aggregation snapshot diverged from stored view")
	}
	if cur.Len() != m.Aggregated().Len() {
		t.Fatalf("snapshot Len %d != view Len %d", cur.Len(), m.Aggregated().Len())
	}
	if cur.Epoch() <= pinned.Epoch() {
		t.Fatal("aggregation epoch not monotonic")
	}
}

// TestEpochRematerializePublishesFull verifies Materialize republishes a
// fresh full epoch when snapshots are enabled.
func TestEpochRematerializePublishesFull(t *testing.T) {
	cat, m := newV1Maintainer(t, false, Options{})
	m.EnableSnapshots()
	first := m.Snapshot().Epoch()
	// Mutate the base without maintaining, then rebuild from scratch.
	rows := insertRowsFor(cat, "R", 5, 400, false)
	if err := cat.Insert("R", rows); err != nil {
		t.Fatal(err)
	}
	if err := m.Materialize(); err != nil {
		t.Fatal(err)
	}
	cur := m.Snapshot()
	if cur.Epoch() <= first {
		t.Fatal("Materialize did not publish a new epoch")
	}
	if got := fingerprintRows(cur.SortedRows()); got != fingerprintRows(m.Materialized().SortedRows()) {
		t.Fatal("rebuilt epoch diverged from stored view")
	}
}
