package view

import (
	"fmt"

	"ojv/internal/rel"
)

// Changeset is the undo log for one atomic maintenance run over a single
// maintainer's stored view. Every view mutation — row inserts and deletes
// on a Materialized (which carry the patternCount and perTable index
// updates with them) and group mutations on an AggMaterialized — is staged
// through the changeset, which records enough to restore the exact
// pre-mutation state. Commit discards the log; Rollback replays it in
// reverse, returning the view bit-identically to its state at Begin.
//
// The paper assumes "the base tables have already been updated" when
// maintenance runs; without a changeset any mid-apply error (a duplicate
// view key, a missing deletion row, a Section 5.2/5.3 cleanup failure)
// would leave the view half-maintained and permanently inconsistent with
// those tables. The changeset is what makes OnInsert/OnDelete/OnModify —
// and, through the staged Apply* API, the multi-view ojv.Database update
// path — all-or-nothing.
//
// A changeset is single-use and not safe for concurrent use; maintenance
// applies view mutations serially (see Options.Parallelism), so one
// changeset per run suffices.
//
// Fault-injection sites. Options.FailPoint, when set, is consulted with a
// site label immediately before every staged mutation:
//
//	primary-insert            apply step 1, insertion of a ΔV^D row
//	primary-delete            apply step 1, deletion of a ΔV^D row
//	secondary-orphan-delete   §5.2 cleanup, orphan removal (insert case)
//	secondary-orphan-insert   §5.2 cleanup, new-orphan insertion (delete case)
//	frombase-orphan-delete    §5.3 cleanup, orphan removal (insert case)
//	frombase-orphan-insert    §5.3 cleanup, new-orphan insertion (delete case)
//	agg-primary-fold          aggregation view, one primary-delta row folded
//	agg-secondary-fold        aggregation view, one secondary-delta row folded
//	modify-between-passes     OnModify, between the delete and insert passes
type Changeset struct {
	m    *Maintainer
	undo []undoRec
	// snapGroups marks aggregation-group keys whose pre-mutation state is
	// already in the log, so each group is snapshotted at most once.
	snapGroups map[string]bool
	done       bool
}

type undoKind uint8

const (
	// undoViewInsert reverts an insertRow: delete the staged key.
	undoViewInsert undoKind = iota
	// undoViewDelete reverts a deleteKey: re-insert the removed row.
	undoViewDelete
	// undoAggGroup reverts all mutations of one aggregation group: restore
	// the snapshotted group, or remove it when the snapshot marks absence.
	undoAggGroup
)

type undoRec struct {
	kind undoKind
	key  string
	row  rel.Row
	// group is the deep-copied pre-mutation group state; nil means the
	// group did not exist at Begin.
	group *aggGroup
}

// Begin opens an undo-logged changeset over the maintainer's stored view.
// Callers stage maintenance through the Apply* methods and then either
// Commit or Rollback; OnInsert/OnDelete/OnModify do all three internally.
func (m *Maintainer) Begin() *Changeset {
	return &Changeset{m: m}
}

// Len returns the number of undo records staged so far.
func (cs *Changeset) Len() int { return len(cs.undo) }

// fail consults the fault-injection hook at a mutation site.
func (cs *Changeset) fail(site string) error {
	if cs.m.opts.FailPoint == nil {
		return nil
	}
	return cs.m.opts.FailPoint(site)
}

// insertRow stages one view-row insertion.
func (cs *Changeset) insertRow(site string, row rel.Row) error {
	if err := cs.fail(site); err != nil {
		return err
	}
	if err := cs.m.mv.insertRow(row); err != nil {
		return err
	}
	cs.undo = append(cs.undo, undoRec{kind: undoViewInsert, key: cs.m.mv.viewKey(row)})
	return nil
}

// deleteKey stages the deletion of the view row with the given key,
// reporting whether a row was removed.
func (cs *Changeset) deleteKey(site, key string) (rel.Row, bool, error) {
	if err := cs.fail(site); err != nil {
		return nil, false, err
	}
	row, ok := cs.m.mv.deleteKey(key)
	if ok {
		cs.undo = append(cs.undo, undoRec{kind: undoViewDelete, key: key, row: row})
	}
	return row, ok, nil
}

// snapshotGroup records an aggregation group's pre-mutation state, once per
// changeset. It must run before the group is first touched; fold calls it
// for every row it merges.
func (cs *Changeset) snapshotGroup(key string) {
	if cs.snapGroups == nil {
		cs.snapGroups = make(map[string]bool)
	}
	if cs.snapGroups[key] {
		return
	}
	cs.snapGroups[key] = true
	var snap *aggGroup
	if g, ok := cs.m.agg.groups[key]; ok {
		snap = g.clone()
	}
	cs.undo = append(cs.undo, undoRec{kind: undoAggGroup, key: key, group: snap})
}

// Commit discards the undo log, making every staged mutation permanent.
// Committing an already-finished changeset is a no-op.
func (cs *Changeset) Commit() {
	cs.undo = nil
	cs.snapGroups = nil
	cs.done = true
}

// Rollback restores the stored view to its state at Begin by replaying the
// undo log in reverse. Rolling back an already-finished changeset is a
// no-op. An error means an undo record could not be applied — possible only
// if the view was mutated outside the changeset — and the view must be
// re-materialized.
func (cs *Changeset) Rollback() error {
	if cs.done {
		return nil
	}
	cs.done = true
	undo := cs.undo
	cs.undo = nil
	cs.snapGroups = nil
	for i := len(undo) - 1; i >= 0; i-- {
		r := undo[i]
		switch r.kind {
		case undoViewInsert:
			//ojvlint:ignore failsite rollback must never consult the fault hook: undo replay has to succeed unconditionally
			if _, ok := cs.m.mv.deleteKey(r.key); !ok {
				return fmt.Errorf("view %s: rollback: staged row vanished; re-materialize the view", cs.m.def.Name)
			}
		case undoViewDelete:
			//ojvlint:ignore failsite rollback must never consult the fault hook: undo replay has to succeed unconditionally
			if err := cs.m.mv.insertRow(r.row); err != nil {
				return fmt.Errorf("view %s: rollback: %v; re-materialize the view", cs.m.def.Name, err)
			}
		case undoAggGroup:
			// The direct map writes below bypass fold, so the epoch dirty set
			// must learn the key here; the rolled-back group resolves to its
			// unchanged committed state at the next publish.
			if cs.m.agg.dirtyGroups != nil {
				cs.m.agg.dirtyGroups[r.key] = struct{}{}
			}
			if r.group == nil {
				//ojvlint:ignore failsite rollback must never consult the fault hook: undo replay has to succeed unconditionally
				delete(cs.m.agg.groups, r.key)
			} else {
				//ojvlint:ignore failsite rollback must never consult the fault hook: undo replay has to succeed unconditionally
				cs.m.agg.groups[r.key] = r.group
			}
		}
	}
	return nil
}
