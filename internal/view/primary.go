package view

import (
	"fmt"

	"ojv/internal/algebra"
	"ojv/internal/rel"
)

// BuildPrimaryDelta derives the ΔV^D expression for updates to the given
// table by the algorithm of Section 4:
//
//  1. Commute joins along the path from the updated table to the root so
//     the input referencing it is always on the left.
//  2. Convert, along that path, full outer joins to left outer joins and
//     right outer joins to inner joins.
//  3. Substitute ΔT for T.
//
// If fkSimplify is true, the SimplifyTree procedure of Section 6.1 then
// prunes joins made empty by foreign-key constraints (possibly proving the
// whole delta empty, in which case the returned expression is nil). If
// leftDeep is true, the tree is finally converted to a left-deep join tree
// with the associativity rules of Section 4.1.
func BuildPrimaryDelta(cat *rel.Catalog, viewExpr algebra.Expr, table string, leftDeep, fkSimplify bool) (algebra.Expr, error) {
	e := algebra.CloneExpr(viewExpr)
	e, found := commutePath(e, table)
	if !found {
		return nil, fmt.Errorf("view: table %s not referenced by the view", table)
	}
	e = weakenPath(e, table)
	e = substituteDelta(e, table)
	if fkSimplify {
		var empty bool
		e, empty = SimplifyTree(cat, e, table)
		if empty {
			return nil, nil
		}
	}
	if leftDeep {
		var err error
		e, err = ToLeftDeep(cat, e)
		if err != nil {
			return nil, err
		}
	}
	return e, nil
}

// commutePath swaps join inputs so that the subtree containing table is
// always the left input, flipping left/right outer join kinds as needed. It
// reports whether the table was found.
func commutePath(e algebra.Expr, table string) (algebra.Expr, bool) {
	switch n := e.(type) {
	case *algebra.TableRef:
		return n, n.Name == table
	case *algebra.Select:
		in, ok := commutePath(n.Input, table)
		n.Input = in
		return n, ok
	case *algebra.Join:
		if l, ok := commutePath(n.Left, table); ok {
			n.Left = l
			return n, true
		}
		if r, ok := commutePath(n.Right, table); ok {
			// Commute: the T-side becomes the left input.
			n.Left, n.Right = r, n.Left
			switch n.Kind {
			case algebra.LeftOuterJoin:
				n.Kind = algebra.RightOuterJoin
			case algebra.RightOuterJoin:
				n.Kind = algebra.LeftOuterJoin
			}
			return n, true
		}
		return n, false
	default:
		return e, false
	}
}

// weakenPath walks the (now leftmost) path from table to the root and
// converts full outer joins to left outer joins and right outer joins to
// inner joins — discarding exactly the tuples that are null-extended on the
// updated table and therefore can never belong to V^D.
func weakenPath(e algebra.Expr, table string) algebra.Expr {
	switch n := e.(type) {
	case *algebra.Select:
		n.Input = weakenPath(n.Input, table)
		return n
	case *algebra.Join:
		if !onPath(n.Left, table) {
			return n // below the path; untouched
		}
		switch n.Kind {
		case algebra.FullOuterJoin:
			n.Kind = algebra.LeftOuterJoin
		case algebra.RightOuterJoin:
			n.Kind = algebra.InnerJoin
		}
		n.Left = weakenPath(n.Left, table)
		return n
	default:
		return e
	}
}

func onPath(e algebra.Expr, table string) bool {
	for _, t := range e.Tables() {
		if t == table {
			return true
		}
	}
	return false
}

// substituteDelta replaces the TableRef leaf for table with a DeltaRef.
func substituteDelta(e algebra.Expr, table string) algebra.Expr {
	switch n := e.(type) {
	case *algebra.TableRef:
		if n.Name == table {
			return &algebra.DeltaRef{Name: table}
		}
		return n
	case *algebra.Select:
		n.Input = substituteDelta(n.Input, table)
		return n
	case *algebra.Join:
		n.Left = substituteDelta(n.Left, table)
		n.Right = substituteDelta(n.Right, table)
		return n
	default:
		return e
	}
}

// SimplifyTree implements the procedure of Section 6.1 on a ΔV^D tree
// (before left-deep conversion): joins against tables holding a foreign key
// to the updated table can never match the delta, so a null-rejecting inner
// join or selection proves the delta empty, and a null-rejecting left outer
// join passes the delta through unchanged and is removed. Tables of removed
// subtrees are added to the working set, since their columns are known to
// be null from then on. It returns the simplified tree and whether the
// delta is provably empty.
func SimplifyTree(cat *rel.Catalog, deltaExpr algebra.Expr, table string) (algebra.Expr, bool) {
	s := fkTablesMatchingJoins(cat, deltaExpr, table)
	if len(s) == 0 {
		return deltaExpr, false
	}
	e, empty := simplifyNode(deltaExpr, s)
	return e, empty
}

// fkTablesMatchingJoins collects the tables with a foreign key referencing
// the updated table whose FK equijoin appears as a join predicate in the
// tree (the set S of Section 6.1).
func fkTablesMatchingJoins(cat *rel.Catalog, e algebra.Expr, updated string) map[string]bool {
	s := make(map[string]bool)
	conjSets := make([]map[string]bool, 0, 4)
	var collect func(e algebra.Expr)
	collect = func(e algebra.Expr) {
		if j, ok := e.(*algebra.Join); ok {
			conjSets = append(conjSets, algebra.ConjunctSet(j.Pred))
		}
		for _, c := range e.Children() {
			collect(c)
		}
	}
	collect(e)
	for _, t := range e.Tables() {
		if t == updated {
			continue
		}
		for _, fk := range cat.ForeignKeys(t) {
			if fk.RefTable != updated {
				continue
			}
			for _, conj := range conjSets {
				all := true
				for i := range fk.Cols {
					if !conj[algebra.CanonicalConjunct(algebra.Eq(t, fk.Cols[i], updated, fk.RefCols[i]))] {
						all = false
						break
					}
				}
				if all {
					s[t] = true
					break
				}
			}
		}
	}
	return s
}

// simplifyNode processes the main path (leftmost spine) bottom-up.
func simplifyNode(e algebra.Expr, s map[string]bool) (algebra.Expr, bool) {
	switch n := e.(type) {
	case *algebra.Select:
		in, empty := simplifyNode(n.Input, s)
		if empty {
			return nil, true
		}
		n.Input = in
		if predRejectsAny(n.Pred, s) {
			return nil, true
		}
		return n, false
	case *algebra.Join:
		left, empty := simplifyNode(n.Left, s)
		if empty {
			return nil, true
		}
		n.Left = left
		if predRejectsAny(n.Pred, s) {
			switch n.Kind {
			case algebra.InnerJoin:
				return nil, true
			case algebra.LeftOuterJoin:
				// The join never matches: the delta passes through and the
				// right side's tables become known-null.
				for _, t := range n.Right.Tables() {
					s[t] = true
				}
				return n.Left, false
			}
		}
		return n, false
	default:
		return e, false
	}
}

func predRejectsAny(p algebra.Pred, s map[string]bool) bool {
	for t := range s {
		if p.RejectsNullsOn(t) {
			return true
		}
	}
	return false
}

// ToLeftDeep converts a ΔV^D tree (whose main path contains only selects,
// inner joins and left outer joins) into a left-deep tree: the right
// operand of every join on the main path becomes a single base table,
// possibly under a selection. It repeatedly applies the associativity rules
// of Section 4.1; rules 1, 4 and 5 introduce a null-if operator plus a
// condense (duplicate/subsumption elimination within left-key groups, the
// paper's δ).
func ToLeftDeep(cat *rel.Catalog, e algebra.Expr) (algebra.Expr, error) {
	for {
		changed, out, err := pullOne(cat, e)
		if err != nil {
			return nil, err
		}
		e = out
		if !changed {
			return e, nil
		}
	}
}

// pullOne finds the lowest main-path join whose right operand is complex
// and applies one rewrite.
func pullOne(cat *rel.Catalog, e algebra.Expr) (bool, algebra.Expr, error) {
	switch n := e.(type) {
	case *algebra.Select:
		changed, in, err := pullOne(cat, n.Input)
		n.Input = in
		return changed, n, err
	case *algebra.NullIf:
		changed, in, err := pullOne(cat, n.Input)
		n.Input = in
		return changed, n, err
	case *algebra.Condense:
		changed, in, err := pullOne(cat, n.Input)
		n.Input = in
		return changed, n, err
	case *algebra.Join:
		changed, in, err := pullOne(cat, n.Left)
		if err != nil {
			return false, nil, err
		}
		n.Left = in
		if changed {
			return true, n, nil
		}
		if isLeafish(n.Right) {
			return false, n, nil
		}
		out, err := pullRight(cat, n)
		if err != nil {
			return false, nil, err
		}
		return true, out, nil
	default:
		return false, e, nil
	}
}

// isLeafish reports whether an expression may stay as the right operand of
// a left-deep join: a base table or delta, possibly under a selection.
func isLeafish(e algebra.Expr) bool {
	switch n := e.(type) {
	case *algebra.TableRef, *algebra.DeltaRef, *algebra.OldTableRef, *algebra.RelRef:
		return true
	case *algebra.Select:
		return isLeafish(n.Input)
	default:
		return false
	}
}

// pullRight rewrites one main-path join whose right operand is complex.
// j.Kind is Inner or LeftOuter (guaranteed by the Section 4 transform).
func pullRight(cat *rel.Catalog, j *algebra.Join) (algebra.Expr, error) {
	switch r := j.Right.(type) {
	case *algebra.Select:
		if j.Kind == algebra.InnerJoin {
			// e1 ⋈p (σq e2) = σq (e1 ⋈p e2)
			j.Right = r.Input
			return &algebra.Select{Input: j, Pred: r.Pred}, nil
		}
		// Rule 1: e1 lo_p (σq e2) = δ λ^{e2.*}_{¬q} (e1 lo_p e2), condensed
		// on e1's key.
		j.Right = r.Input
		return condenseNullIf(cat, j, r.Pred, j.Right.Tables()), nil
	case *algebra.Join:
		// Orient the right join so the main-path predicate references its
		// left input.
		if err := orientRightJoin(j, r); err != nil {
			return nil, err
		}
		e1, e2, e3 := j.Left, r.Left, r.Right
		p12, p23 := j.Pred, r.Pred
		inner := func(k1, k2 algebra.JoinKind) algebra.Expr {
			return &algebra.Join{Kind: k2, Pred: p23, Right: e3,
				Left: &algebra.Join{Kind: k1, Pred: p12, Left: e1, Right: e2}}
		}
		if j.Kind == algebra.InnerJoin {
			switch r.Kind {
			case algebra.InnerJoin, algebra.RightOuterJoin:
				// e1 ⋈ (e2 ⋈/ro e3): unmatched e3 rows are null on e2 and die
				// in the null-rejecting main-path join ⇒ plain associativity.
				return inner(algebra.InnerJoin, algebra.InnerJoin), nil
			case algebra.LeftOuterJoin, algebra.FullOuterJoin:
				// e3-only rows die; e2-only rows survive null-extended on e3.
				return inner(algebra.InnerJoin, algebra.LeftOuterJoin), nil
			}
		}
		switch r.Kind {
		case algebra.FullOuterJoin:
			// Rule 2.
			return inner(algebra.LeftOuterJoin, algebra.LeftOuterJoin), nil
		case algebra.LeftOuterJoin:
			// Rule 3.
			return inner(algebra.LeftOuterJoin, algebra.LeftOuterJoin), nil
		case algebra.RightOuterJoin, algebra.InnerJoin:
			// Rules 4 and 5: ((e1 lo e2) lo e3) with a null-if fix-up of
			// rows whose e2-e3 match failed, then condense.
			body := inner(algebra.LeftOuterJoin, algebra.LeftOuterJoin)
			nullTabs := append(append([]string(nil), e2.Tables()...), e3.Tables()...)
			return condenseNullIfExpr(cat, body, p23, nullTabs, e1), nil
		}
		return nil, fmt.Errorf("view: cannot pull %s join", r.Kind)
	default:
		return nil, fmt.Errorf("view: unexpected right operand %T on main path", j.Right)
	}
}

// orientRightJoin commutes r's inputs, if needed, so that the main-path
// predicate p(1,2) references tables in r.Left.
func orientRightJoin(j *algebra.Join, r *algebra.Join) error {
	leftTabs := algebra.TableSet(r.Left)
	rightTabs := algebra.TableSet(r.Right)
	var inLeft, inRight bool
	for _, t := range algebra.PredTables(j.Pred) {
		if leftTabs[t] {
			inLeft = true
		}
		if rightTabs[t] {
			inRight = true
		}
	}
	if inLeft && inRight {
		return fmt.Errorf("view: join predicate %s references both inputs of the right operand (predicates must be binary)", j.Pred)
	}
	if inRight {
		r.Left, r.Right = r.Right, r.Left
		switch r.Kind {
		case algebra.LeftOuterJoin:
			r.Kind = algebra.RightOuterJoin
		case algebra.RightOuterJoin:
			r.Kind = algebra.LeftOuterJoin
		}
	}
	return nil
}

// condenseNullIf wraps body in λ + condense, grouping on the key columns of
// the tables of body's leftmost input (e1).
func condenseNullIf(cat *rel.Catalog, body *algebra.Join, unless algebra.Pred, nullTabs []string) algebra.Expr {
	return condenseNullIfExpr(cat, body, unless, nullTabs, body.Left)
}

func condenseNullIfExpr(cat *rel.Catalog, body algebra.Expr, unless algebra.Pred, nullTabs []string, e1 algebra.Expr) algebra.Expr {
	return &algebra.Condense{
		Input:    &algebra.NullIf{Input: body, Unless: unless, NullTables: nullTabs},
		GroupKey: termKeyCols(cat, e1.Tables()),
	}
}

// IsLeftDeep reports whether every join's right operand on the whole tree
// is leafish; used by tests and EXPLAIN output.
func IsLeftDeep(e algebra.Expr) bool {
	switch n := e.(type) {
	case *algebra.Join:
		return isLeafish(n.Right) && IsLeftDeep(n.Left)
	case *algebra.Select:
		return IsLeftDeep(n.Input)
	case *algebra.NullIf:
		return IsLeftDeep(n.Input)
	case *algebra.Condense:
		return IsLeftDeep(n.Input)
	default:
		return isLeafish(e)
	}
}
