package view

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"ojv/internal/algebra"
	"ojv/internal/fixture"
	"ojv/internal/obs"
	"ojv/internal/rel"
)

// newNamedV1 builds a maintainer named name over cat with the V1 shape.
func newNamedV1(t *testing.T, cat *rel.Catalog, name string, withFK bool) *Maintainer {
	t.Helper()
	def, err := Define(cat, name, fixture.V1Expr(withFK), fixture.V1Output(cat))
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMaintainer(def, Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Materialize(); err != nil {
		t.Fatal(err)
	}
	return m
}

// TestCollectShareable pins the shareable-node rule on a real plan: every
// node is an inner node, contains the Δ scan, carries its String() as key,
// and the set is non-empty for a multi-join view.
func TestCollectShareable(t *testing.T) {
	cat := mustRSTU(t, false)
	m := newNamedV1(t, cat, "v1", false)
	plan, err := m.Plan("R", true)
	if err != nil {
		t.Fatal(err)
	}
	if plan.primary == nil {
		t.Fatal("V1 ΔR plan has no primary")
	}
	if len(plan.shared) == 0 {
		t.Fatal("no shareable nodes in a four-table plan")
	}
	containsDelta := func(e algebra.Expr) bool {
		found := false
		var walk func(algebra.Expr)
		walk = func(x algebra.Expr) {
			if _, ok := x.(*algebra.DeltaRef); ok {
				found = true
			}
			for _, c := range x.Children() {
				walk(c)
			}
		}
		walk(e)
		return found
	}
	for _, n := range plan.shared {
		if len(n.expr.Children()) == 0 {
			t.Errorf("leaf %s marked shareable", n.key)
		}
		if !containsDelta(n.expr) {
			t.Errorf("shareable node without Δ scan: %s", n.key)
		}
		if n.key != n.expr.String() {
			t.Errorf("key %q != String() %q", n.key, n.expr.String())
		}
		if plan.sharedKeys[n.expr] != n.key {
			t.Errorf("sharedKeys index misses node %s", n.key)
		}
	}
}

// TestSharedDAGIdenticalViews: two structurally identical views share their
// whole primary tree — the cut is maximal, so the DAG is a single subtree
// with one occurrence per view.
func TestSharedDAGIdenticalViews(t *testing.T) {
	cat := mustRSTU(t, false)
	a := newNamedV1(t, cat, "va", false)
	b := newNamedV1(t, cat, "vb", false)
	dag, err := sharedDAG([]*Maintainer{a, b}, "R", true)
	if err != nil {
		t.Fatal(err)
	}
	if len(dag) != 1 {
		t.Fatalf("identical views: got %d subtrees, want 1 (maximal cut)", len(dag))
	}
	st := dag[0]
	if len(st.occ) != 2 {
		t.Fatalf("fan-out %d, want 2", len(st.occ))
	}
	planA, err := a.Plan("R", true)
	if err != nil {
		t.Fatal(err)
	}
	if st.key != planA.primary.String() {
		t.Fatalf("shared subtree is not the whole primary:\n got %s\nwant %s", st.key, planA.primary.String())
	}
	named, err := SharedDAG([]*Maintainer{a, b}, "R", true)
	if err != nil {
		t.Fatal(err)
	}
	if len(named) != 1 || fmt.Sprint(named[0].Views) != "[va vb]" {
		t.Fatalf("SharedDAG views = %v", named)
	}
}

// TestSharedDAGNoOverlap: when only one view references the updated table
// there is nothing to share, and the DAG is empty.
func TestSharedDAGNoOverlap(t *testing.T) {
	cat := mustRSTU(t, false)
	a := newNamedV1(t, cat, "va", false)
	defRS, err := Define(cat, "vrs",
		&algebra.Join{Kind: algebra.FullOuterJoin,
			Left:  &algebra.TableRef{Name: "R"},
			Right: &algebra.TableRef{Name: "S"},
			Pred:  algebra.Eq("R", "b", "S", "b")},
		fixture.AllColumns(cat, "R", "S"))
	if err != nil {
		t.Fatal(err)
	}
	rs, err := NewMaintainer(defRS, Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := rs.Materialize(); err != nil {
		t.Fatal(err)
	}
	// T is referenced only by va: fewer than two participants, no DAG.
	dag, err := sharedDAG([]*Maintainer{a, rs}, "T", true)
	if err != nil {
		t.Fatal(err)
	}
	if len(dag) != 0 {
		t.Fatalf("T update shared across 1 view: %d subtrees", len(dag))
	}
}

// TestPlanSharedMaintainsIdentically drives two identical views through
// one shared run and checks (a) both end bit-identical to a per-view
// maintained twin, (b) the producer row count equals each consumer's,
// published through the view.shared.* counters.
func TestPlanSharedMaintainsIdentically(t *testing.T) {
	cat := mustRSTU(t, false)
	a := newNamedV1(t, cat, "va", false)
	b := newNamedV1(t, cat, "vb", false)
	ref := newNamedV1(t, cat, "ref", false)

	delta := insertRowsFor(cat, "R", 6, 42, false)
	if err := cat.Insert("R", delta); err != nil {
		t.Fatal(err)
	}

	metrics := obs.NewRegistry()
	run, err := PlanShared([]*Maintainer{a, b}, "R", true, true, delta, nil, metrics)
	if err != nil {
		t.Fatal(err)
	}
	if run.Subtrees() == 0 {
		t.Fatal("identical views produced no shared run")
	}
	for _, m := range []*Maintainer{a, b} {
		cs := m.Begin()
		stats, err := m.ApplyInsertShared(cs, "R", delta, run.Bound(m))
		if err != nil {
			t.Fatal(err)
		}
		m.CommitStaged(cs, stats)
	}
	if err := run.Close(); err != nil {
		t.Fatal(err)
	}

	csRef := ref.Begin()
	stats, err := ref.ApplyInsert(csRef, "R", delta)
	if err != nil {
		t.Fatal(err)
	}
	ref.CommitStaged(csRef, stats)

	fingerprint := func(m *Maintainer) string {
		rows := m.Materialized().Rows()
		out := make([]string, len(rows))
		for i, r := range rows {
			out[i] = r.String()
		}
		sort.Strings(out)
		return strings.Join(out, "\n")
	}
	want := fingerprint(ref)
	for _, m := range []*Maintainer{a, b} {
		if got := fingerprint(m); got != want {
			t.Fatalf("view %s diverged from per-view twin", m.def.Name)
		}
		if err := Check(m); err != nil {
			t.Fatal(err)
		}
	}

	snap := metrics.Snapshot()
	produced := snap["view.shared.rows.producer"]
	consumed := snap["view.shared.rows.consumer"]
	saved := snap["view.shared.rows.saved"]
	if produced == 0 {
		t.Fatal("producer served no rows")
	}
	if consumed != produced+saved {
		t.Fatalf("Σ consumer %d != producer %d + saved %d", consumed, produced, saved)
	}
	if snap["view.shared.subtrees"] != int64(run.Subtrees()) {
		t.Fatalf("subtrees counter %d != run %d", snap["view.shared.subtrees"], run.Subtrees())
	}
	if snap["view.shared.views"] != 2 {
		t.Fatalf("views counter %d != 2", snap["view.shared.views"])
	}
}
