package view

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"ojv/internal/algebra"
	"ojv/internal/exec"
	"ojv/internal/fixture"
	"ojv/internal/rel"
)

// checkLeftDeepEquivalence evaluates the bushy and left-deep ΔV^D trees
// over a random delta and compares the results as multisets.
func checkLeftDeepEquivalence(cat *rel.Catalog, expr algebra.Expr, table string, rng *rand.Rand) error {
	bushy, err := BuildPrimaryDelta(cat, expr, table, false, false)
	if err != nil {
		return err
	}
	leftDeep, err := BuildPrimaryDelta(cat, expr, table, true, false)
	if err != nil {
		return err
	}
	if !IsLeftDeep(leftDeep) {
		return fmt.Errorf("conversion did not reach a left-deep tree:\n%s", algebra.FormatTree(leftDeep))
	}
	var delta []rel.Row
	for i := 0; i < 1+rng.Intn(5); i++ {
		delta = append(delta, rtRow(rng, int64(5000+i)))
	}
	ctx := &exec.Context{Catalog: cat, Deltas: map[string][]rel.Row{table: delta}, DeltaIsInsert: true}
	a, err := exec.Eval(ctx, bushy)
	if err != nil {
		return fmt.Errorf("bushy eval: %w", err)
	}
	b, err := exec.Eval(ctx, leftDeep)
	if err != nil {
		return fmt.Errorf("left-deep eval: %w", err)
	}
	return sameMultiset(a, b)
}

// sameMultiset compares two relations up to row order, aligning schemas by
// column name.
func sameMultiset(a, b exec.Relation) error {
	mapping := make([]int, len(a.Schema))
	for i, c := range a.Schema {
		p := b.Schema.IndexOf(c.Table, c.Name)
		if p < 0 {
			return fmt.Errorf("column %s missing from left-deep schema", c.QualifiedName())
		}
		mapping[i] = p
	}
	if len(a.Schema) != len(b.Schema) {
		return fmt.Errorf("schema widths differ: %d vs %d", len(a.Schema), len(b.Schema))
	}
	enc := func(rows []rel.Row, reorder bool) []string {
		out := make([]string, len(rows))
		for i, r := range rows {
			row := r
			if reorder {
				row = make(rel.Row, len(r))
				for j, src := range mapping {
					row[j] = r[src]
				}
			}
			out[i] = rel.EncodeValues(row...)
		}
		sort.Strings(out)
		return out
	}
	ka := enc(a.Rows, false)
	kb := enc(b.Rows, true)
	if len(ka) != len(kb) {
		return fmt.Errorf("row counts differ: bushy %d vs left-deep %d", len(ka), len(kb))
	}
	for i := range ka {
		if ka[i] != kb[i] {
			return fmt.Errorf("row multiset differs at %d", i)
		}
	}
	return nil
}

// TestLeftDeepEquivalenceV1 pins the equivalence on the paper's running
// example for every updated table, and on the V2 shape with selections.
func TestLeftDeepEquivalenceV1(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	cat := mustRSTU(t, false)
	for _, table := range []string{"R", "S", "T", "U"} {
		bushy, err := BuildPrimaryDelta(cat, fixture.V1Expr(false), table, false, false)
		if err != nil {
			t.Fatal(err)
		}
		leftDeep, err := BuildPrimaryDelta(cat, fixture.V1Expr(false), table, true, false)
		if err != nil {
			t.Fatal(err)
		}
		var delta []rel.Row
		for i := 0; i < 5; i++ {
			cols := 3
			if table == "S" {
				cols = 2
			}
			row := rel.Row{rel.Int(int64(7000 + i))}
			for c := 1; c < cols; c++ {
				row = append(row, rel.Int(rng.Int63n(17)))
			}
			delta = append(delta, row)
		}
		ctx := &exec.Context{Catalog: cat, Deltas: map[string][]rel.Row{table: delta}, DeltaIsInsert: true}
		a, err := exec.Eval(ctx, bushy)
		if err != nil {
			t.Fatal(err)
		}
		b, err := exec.Eval(ctx, leftDeep)
		if err != nil {
			t.Fatal(err)
		}
		if err := sameMultiset(a, b); err != nil {
			t.Errorf("table %s: %v", table, err)
		}
	}
}

// TestRule1SelectUnderOuterJoin exercises rule 1 specifically: a selection
// over a complex right operand of a left outer join must be pulled through
// a null-if + condense.
func TestRule1SelectUnderOuterJoin(t *testing.T) {
	cat := mustRSTU(t, false)
	// View: T lo (σ[S.b<9](S fo R)) — after commuting for updates to T, the
	// right operand is a selection over a join.
	expr := &algebra.Join{
		Kind: algebra.LeftOuterJoin,
		Left: &algebra.TableRef{Name: "T"},
		Right: &algebra.Select{
			Input: &algebra.Join{Kind: algebra.FullOuterJoin, Left: &algebra.TableRef{Name: "S"}, Right: &algebra.TableRef{Name: "R"}, Pred: algebra.Eq("S", "b", "R", "b")},
			Pred:  algebra.CmpConst("S", "b", algebra.OpLt, rel.Int(9)),
		},
		Pred: algebra.Eq("T", "c", "R", "c"),
	}
	rng := rand.New(rand.NewSource(3))
	if err := checkLeftDeepEquivalence(cat, expr, "T", rng); err != nil {
		t.Fatal(err)
	}
	// And the view maintains correctly end to end.
	def, err := Define(cat, "rule1", expr, fixture.AllColumns(cat, "T", "S", "R"))
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMaintainer(def, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Materialize(); err != nil {
		t.Fatal(err)
	}
	rows := []rel.Row{{rel.Int(9000), rel.Int(1), rel.Int(2)}, {rel.Int(9001), rel.Int(3), rel.Int(4)}}
	if err := cat.Insert("T", rows); err != nil {
		t.Fatal(err)
	}
	if _, err := m.OnInsert("T", rows); err != nil {
		t.Fatal(err)
	}
	if err := Check(m); err != nil {
		t.Fatal(err)
	}
}

// TestRules4And5RightOperandShapes exercises rules 4 and 5: right operands
// whose top operator is a right outer join or an inner join require the
// null-if fix-up.
func TestRules4And5RightOperandShapes(t *testing.T) {
	cat := mustRSTU(t, false)
	rng := rand.New(rand.NewSource(4))
	for _, kind := range []algebra.JoinKind{algebra.RightOuterJoin, algebra.InnerJoin} {
		// View: T lo (S <kind> R) with the main-path predicate referencing
		// S — the right operand's preserved/left input — so rules 4 and 5
		// apply as-is (a predicate on R would commute the ro into an lo and
		// take rule 3 instead).
		expr := &algebra.Join{
			Kind: algebra.LeftOuterJoin,
			Left: &algebra.TableRef{Name: "T"},
			Right: &algebra.Join{
				Kind: kind, Left: &algebra.TableRef{Name: "S"}, Right: &algebra.TableRef{Name: "R"},
				Pred: algebra.Eq("S", "b", "R", "b"),
			},
			Pred: algebra.Eq("T", "c", "S", "b"),
		}
		if err := checkLeftDeepEquivalence(cat, expr, "T", rng); err != nil {
			t.Fatalf("kind %s: %v", kind, err)
		}
		ld, err := BuildPrimaryDelta(cat, expr, "T", true, false)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := ld.(*algebra.Condense); !ok {
			t.Errorf("kind %s: expected a condense at the root, got %T", kind, ld)
		}
	}
}
