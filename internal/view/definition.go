// Package view implements the paper's contribution: materialized SPOJ
// (select-project-outer-join) views, optionally aggregated (SPOJG), with
// efficient incremental maintenance.
//
// Maintenance follows the paper's two-step procedure (Section 3):
//
//  1. Compute the primary delta ΔV^D — a transformed copy of the view
//     expression with the updated table replaced by its delta (Section 4),
//     converted to a left-deep tree (Section 4.1) and simplified with
//     foreign keys (Section 6.1) — and apply it to the view.
//  2. Compute the secondary delta ΔV^I — the orphan cleanup for indirectly
//     affected terms — either from the view and the primary delta
//     (Section 5.2) or from base tables (Section 5.3), restricted to the
//     reduced maintenance graph (Section 6.2), and apply it with the
//     opposite sign.
package view

import (
	"fmt"
	"sort"

	"ojv/internal/algebra"
	"ojv/internal/obs"
	"ojv/internal/rel"
)

// Strategy selects how the secondary delta is computed.
type Strategy int8

// Strategies. StrategyAuto uses the view when it exposes the required
// columns (it always does under Define's validation) and falls back to base
// tables otherwise; the paper notes the optimizer should choose in a
// cost-based manner, and for point orphan lookups the view is almost always
// cheaper.
const (
	StrategyAuto Strategy = iota
	StrategyFromView
	StrategyFromBase
)

// Options tunes the maintenance planner. The zero value enables every
// optimization the paper describes; the Disable* switches exist for the
// ablation experiments.
type Options struct {
	// DisableLeftDeep keeps the bushy ΔV^D tree from the Section 4
	// transform instead of converting it to a left-deep tree (ablation for
	// Section 4.1).
	DisableLeftDeep bool
	// DisableFKSimplify skips the SimplifyTree pass over ΔV^D (Section 6.1).
	DisableFKSimplify bool
	// DisableFKGraph skips the Theorem 3 reduction of the maintenance graph
	// (Section 6.2) and FK-based term elimination during normalization.
	DisableFKGraph bool
	// DisableOrphanIndex drops the per-table key indexes on the view that
	// accelerate orphan existence checks; lookups fall back to view scans.
	DisableOrphanIndex bool
	// Strategy selects the secondary-delta source.
	Strategy Strategy
	// Parallelism caps the worker goroutines used for delta evaluation and
	// for computing per-term secondary-delta cleanups. 0 (the zero value)
	// means runtime.GOMAXPROCS(0); 1 forces serial maintenance. View
	// mutations are always applied serially, so results are identical —
	// including row iteration structure and MaintStats — at every setting.
	Parallelism int
	// BatchSize is the soft row cap per executor pipeline batch (joins may
	// overshoot for one input batch rather than split their output). 0 (the
	// zero value) means exec.DefaultBatchSize. Results are identical at
	// every setting; the knob trades per-batch dispatch overhead against
	// working-set size.
	BatchSize int
	// VerifyPlans statically verifies every freshly compiled maintenance
	// plan against the paper's structural invariants (see planck.go) and
	// fails the compilation on the first violation. It is always on under
	// go test; set it explicitly for debug builds.
	VerifyPlans bool
	// FailPoint, when non-nil, is consulted immediately before every staged
	// view mutation with that mutation site's label (the site list is
	// documented on Changeset). A non-nil result aborts the maintenance run
	// at exactly that point and the run's changeset rolls back. It exists
	// for deterministic fault-injection tests of the atomic-apply protocol
	// and must be nil in production use.
	FailPoint func(site string) error
	// Tracer, when non-nil, records one nested span tree per maintenance run
	// (see the obs package for the span taxonomy). Nil disables tracing; the
	// maintenance path then pays only a nil check per span site.
	Tracer *obs.Tracer
	// Metrics, when non-nil, receives executor- and maintenance-level
	// counters (rows scanned, hash probes, undo records, per-worker morsel
	// counts). Nil disables metrics collection.
	Metrics *obs.Registry
}

// AggSpec is the optional group-by on top of an SPOJ view (Section 3.3).
type AggSpec struct {
	GroupCols []algebra.ColRef
	Aggs      []algebra.Aggregate
}

// Definition is a validated SPOJ(G) view definition.
type Definition struct {
	Name string
	// Expr is the SPOJ operator tree (no projection or group-by inside).
	Expr algebra.Expr
	// Output lists the projected output columns. It must include the unique
	// key of every referenced base table (the view outputs a unique key, as
	// the paper requires, and the maintenance formulas need the key
	// columns).
	Output []algebra.ColRef
	// Agg, when non-nil, makes this an aggregation view over the SPOJ core.
	Agg *AggSpec

	cat *rel.Catalog
	// fullSchema is the unprojected tuple-space schema: the concatenation of
	// every referenced table's schema, in expression order.
	fullSchema rel.Schema
	// tables is the sorted list of referenced base tables.
	tables []string
	nf     *algebra.NormalForm
	nfNoFK *algebra.NormalForm
}

// Define validates a view definition against a catalog. It enforces the
// paper's standing restrictions (Section 2): every base table has a unique
// non-null key (guaranteed by the catalog), no table is referenced twice,
// all predicates are null-rejecting on the tables they reference, every
// join predicate references both join inputs, and the view output includes
// every table's key columns.
func Define(cat *rel.Catalog, name string, expr algebra.Expr, output []algebra.ColRef) (*Definition, error) {
	if err := validateSPOJ(cat, expr); err != nil {
		return nil, fmt.Errorf("view %s: %w", name, err)
	}
	fullSchema, err := fullSchemaOf(cat, expr)
	if err != nil {
		return nil, fmt.Errorf("view %s: %w", name, err)
	}
	for _, c := range output {
		if !fullSchema.Has(c.Table, c.Column) {
			return nil, fmt.Errorf("view %s: output column %s does not exist", name, c)
		}
	}
	tables := algebra.SortedTables(expr)
	for _, t := range tables {
		tab := cat.Table(t)
		for _, kc := range tab.KeyCols() {
			col := tab.Schema()[kc]
			if !hasOutput(output, col.Table, col.Name) {
				return nil, fmt.Errorf("view %s: output must include key column %s.%s", name, col.Table, col.Name)
			}
		}
	}
	nf, err := algebra.Normalize(expr, cat)
	if err != nil {
		return nil, fmt.Errorf("view %s: %w", name, err)
	}
	nfNoFK, err := algebra.Normalize(expr, nil)
	if err != nil {
		return nil, fmt.Errorf("view %s: %w", name, err)
	}
	return &Definition{
		Name:       name,
		Expr:       expr,
		Output:     output,
		cat:        cat,
		fullSchema: fullSchema,
		tables:     tables,
		nf:         nf,
		nfNoFK:     nfNoFK,
	}, nil
}

// DefineAggregate validates an aggregation view: an SPOJ core plus a
// group-by (Section 3.3). Group columns must be part of the core's output
// space; only COUNT/SUM/AVG are supported (MIN/MAX are not incrementally
// maintainable under deletions).
func DefineAggregate(cat *rel.Catalog, name string, expr algebra.Expr, agg AggSpec) (*Definition, error) {
	if err := validateSPOJ(cat, expr); err != nil {
		return nil, fmt.Errorf("view %s: %w", name, err)
	}
	fullSchema, err := fullSchemaOf(cat, expr)
	if err != nil {
		return nil, fmt.Errorf("view %s: %w", name, err)
	}
	if len(agg.GroupCols) == 0 {
		return nil, fmt.Errorf("view %s: aggregation view requires group columns", name)
	}
	for _, c := range agg.GroupCols {
		if !fullSchema.Has(c.Table, c.Column) {
			return nil, fmt.Errorf("view %s: group column %s does not exist", name, c)
		}
	}
	names := make(map[string]bool)
	for _, a := range agg.Aggs {
		switch a.Func {
		case algebra.AggCount, algebra.AggSum, algebra.AggAvg:
		default:
			return nil, fmt.Errorf("view %s: aggregate %v is not incrementally maintainable", name, a.Func)
		}
		if a.Func != algebra.AggCount || a.Col != (algebra.ColRef{}) {
			if !fullSchema.Has(a.Col.Table, a.Col.Column) {
				return nil, fmt.Errorf("view %s: aggregate column %s does not exist", name, a.Col)
			}
		}
		if a.Name == "" || names[a.Name] {
			return nil, fmt.Errorf("view %s: aggregate output names must be unique and non-empty", name)
		}
		names[a.Name] = true
	}
	nf, err := algebra.Normalize(expr, cat)
	if err != nil {
		return nil, fmt.Errorf("view %s: %w", name, err)
	}
	nfNoFK, err := algebra.Normalize(expr, nil)
	if err != nil {
		return nil, fmt.Errorf("view %s: %w", name, err)
	}
	spec := agg
	return &Definition{
		Name:       name,
		Expr:       expr,
		Agg:        &spec,
		cat:        cat,
		fullSchema: fullSchema,
		tables:     algebra.SortedTables(expr),
		nf:         nf,
		nfNoFK:     nfNoFK,
	}, nil
}

// Tables returns the sorted base tables the view references.
func (d *Definition) Tables() []string { return d.tables }

// NormalForm returns the view's join-disjunctive normal form (with FK-based
// term elimination applied).
func (d *Definition) NormalForm() *algebra.NormalForm { return d.nf }

// FullSchema returns the unprojected tuple-space schema.
func (d *Definition) FullSchema() rel.Schema { return d.fullSchema }

func hasOutput(out []algebra.ColRef, table, col string) bool {
	for _, c := range out {
		if c.Table == table && c.Column == col {
			return true
		}
	}
	return false
}

// fullSchemaOf builds the concatenated schema of all referenced tables in
// expression-leaf order.
func fullSchemaOf(cat *rel.Catalog, expr algebra.Expr) (rel.Schema, error) {
	var out rel.Schema
	for _, t := range expr.Tables() {
		sch, ok := cat.TableSchema(t)
		if !ok {
			return nil, fmt.Errorf("unknown table %s", t)
		}
		out = out.Concat(sch)
	}
	return out, nil
}

// validateSPOJ enforces the paper's restrictions on the view expression.
func validateSPOJ(cat *rel.Catalog, expr algebra.Expr) error {
	seen := make(map[string]bool)
	var walk func(e algebra.Expr) error
	walk = func(e algebra.Expr) error {
		switch n := e.(type) {
		case *algebra.TableRef:
			if cat.Table(n.Name) == nil {
				return fmt.Errorf("unknown table %s", n.Name)
			}
			if seen[n.Name] {
				return fmt.Errorf("table %s referenced twice (self-joins are not supported)", n.Name)
			}
			seen[n.Name] = true
			return nil
		case *algebra.Select:
			if err := checkNullRejecting(n.Pred); err != nil {
				return err
			}
			return walk(n.Input)
		case *algebra.Join:
			switch n.Kind {
			case algebra.InnerJoin, algebra.LeftOuterJoin, algebra.RightOuterJoin, algebra.FullOuterJoin:
			default:
				return fmt.Errorf("%s is not an SPOJ join kind", n.Kind)
			}
			if err := checkNullRejecting(n.Pred); err != nil {
				return err
			}
			if err := checkJoinPredSides(n); err != nil {
				return err
			}
			if err := walk(n.Left); err != nil {
				return err
			}
			return walk(n.Right)
		default:
			return fmt.Errorf("%T is not allowed in a view definition", e)
		}
	}
	return walk(expr)
}

// checkNullRejecting verifies the predicate rejects nulls on every table it
// references (the paper's standing assumption for view predicates).
func checkNullRejecting(p algebra.Pred) error {
	for _, t := range algebra.PredTables(p) {
		if !p.RejectsNullsOn(t) {
			return fmt.Errorf("predicate %s is not null-rejecting on %s", p, t)
		}
	}
	return nil
}

// checkJoinPredSides verifies every join predicate references at least one
// table from each input (required by the commuting and associativity
// transforms of Section 4).
func checkJoinPredSides(j *algebra.Join) error {
	if _, ok := j.Pred.(algebra.TruePred); ok {
		return fmt.Errorf("join predicates must not be empty")
	}
	left := algebra.TableSet(j.Left)
	right := algebra.TableSet(j.Right)
	var hasLeft, hasRight bool
	for _, t := range algebra.PredTables(j.Pred) {
		if left[t] {
			hasLeft = true
		}
		if right[t] {
			hasRight = true
		}
		if !left[t] && !right[t] {
			return fmt.Errorf("join predicate %s references %s, which is not a join input", j.Pred, t)
		}
	}
	if !hasLeft || !hasRight {
		return fmt.Errorf("join predicate %s must reference both join inputs", j.Pred)
	}
	return nil
}

// termKeyCols returns, for the sorted table set, each table's key column
// references in deterministic order.
func termKeyCols(cat *rel.Catalog, tables []string) []algebra.ColRef {
	var out []algebra.ColRef
	sorted := append([]string(nil), tables...)
	sort.Strings(sorted)
	for _, t := range sorted {
		tab := cat.Table(t)
		for _, kc := range tab.KeyCols() {
			out = append(out, algebra.Col(t, tab.Schema()[kc].Name))
		}
	}
	return out
}
