package view

import (
	"testing"

	"ojv/internal/obs"
)

// TestObservedFaultMatrix re-runs the whole fault-injection matrix with the
// observability layer enabled and checks the accounting invariants at every
// kill site:
//
//   - every recorded span tree validates even when the run aborted mid-way
//     (spans end before errors propagate, so a fault never leaks an
//     unfinished span);
//   - a faulted attempt moves view.rollbacks by exactly one and never
//     touches view.commits or view.undo.records;
//   - a committed attempt moves view.commits by one and the row/undo
//     counters by exactly the amounts its MaintStats report.
//
// Metrics are snapshotted per attempt because the registry deliberately
// accumulates the row counters of aborted attempts too (the work was done,
// then undone — both halves are observable).
func TestObservedFaultMatrix(t *testing.T) {
	for _, sc := range faultScenarios() {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			faults := 0
			for failAt := 1; ; failAt++ {
				if failAt > 2000 {
					t.Fatal("fault matrix did not terminate")
				}
				tracer := obs.NewTracer()
				reg := obs.NewRegistry()
				inj := &faultInjector{failAt: failAt}
				m, op := sc.build(t, Options{FailPoint: inj.hook, Tracer: tracer, Metrics: reg})
				tracer.Reset() // materialization happens before the run under test
				before := reg.Snapshot()
				stats, err := op()
				after := reg.Snapshot()
				delta := func(name string) int64 { return after[name] - before[name] }

				var rollbackRoots, commitRoots int
				for _, r := range tracer.Roots() {
					if vErr := r.Validate(); vErr != nil {
						t.Fatalf("failAt=%d: span tree invalid after %s: %v", failAt, r.Name(), vErr)
					}
					switch r.Name() {
					case "changeset.rollback":
						rollbackRoots++
					case "changeset.commit":
						commitRoots++
					}
				}

				if inj.site == "" {
					// Matrix exhausted: this run committed.
					if err != nil {
						t.Fatalf("failAt=%d: unfaulted run failed: %v", failAt, err)
					}
					if got, want := delta("view.commits"), int64(1); got != want {
						t.Errorf("view.commits moved by %d, want %d", got, want)
					}
					if got := delta("view.rollbacks"); got != 0 {
						t.Errorf("view.rollbacks moved by %d on a committed run", got)
					}
					if got, want := delta("view.undo.records"), int64(stats.UndoRecords); got != want {
						t.Errorf("view.undo.records moved by %d, stats say %d", got, want)
					}
					if got, want := delta("view.rows.primary"), int64(stats.PrimaryRows); got != want {
						t.Errorf("view.rows.primary moved by %d, stats say %d", got, want)
					}
					if got, want := delta("view.rows.secondary"), int64(stats.SecondaryRows); got != want {
						t.Errorf("view.rows.secondary moved by %d, stats say %d", got, want)
					}
					if commitRoots != 1 || rollbackRoots != 0 {
						t.Errorf("committed run recorded %d commit / %d rollback roots, want 1/0", commitRoots, rollbackRoots)
					}
					break
				}

				faults++
				if err == nil {
					t.Fatalf("failAt=%d: fault at %s did not surface", failAt, inj.site)
				}
				if got := delta("view.rollbacks"); got != 1 {
					t.Errorf("failAt=%d: view.rollbacks moved by %d on a faulted run, want 1", failAt, got)
				}
				if got := delta("view.commits"); got != 0 {
					t.Errorf("failAt=%d: view.commits moved by %d on a faulted run", failAt, got)
				}
				if got := delta("view.undo.records"); got != 0 {
					t.Errorf("failAt=%d: view.undo.records moved by %d on a faulted run", failAt, got)
				}
				if rollbackRoots != 1 || commitRoots != 0 {
					t.Errorf("failAt=%d: faulted run recorded %d rollback / %d commit roots, want 1/0", failAt, rollbackRoots, commitRoots)
				}
				_ = m
			}
			if faults == 0 {
				t.Fatal("no faults fired")
			}
		})
	}
}
