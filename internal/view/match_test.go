package view

import (
	"testing"

	"ojv/internal/algebra"
	"ojv/internal/fixture"
	"ojv/internal/rel"
)

func TestMatchesIdenticalExpression(t *testing.T) {
	cat := mustRSTU(t, false)
	def, err := Define(cat, "v1", fixture.V1Expr(false), fixture.V1Output(cat))
	if err != nil {
		t.Fatal(err)
	}
	if !def.Matches(fixture.V1Expr(false)) {
		t.Error("a view must match its own definition")
	}
}

func TestMatchesCommutedJoins(t *testing.T) {
	cat := mustRSTU(t, false)
	def, err := Define(cat, "v1", fixture.V1Expr(false), fixture.V1Output(cat))
	if err != nil {
		t.Fatal(err)
	}
	// Commute the full outer joins (fo is symmetric) and reverse the
	// predicate operand order: the normal form is identical.
	commuted := &algebra.Join{
		Kind:  algebra.LeftOuterJoin,
		Left:  &algebra.Join{Kind: algebra.FullOuterJoin, Left: &algebra.TableRef{Name: "S"}, Right: &algebra.TableRef{Name: "R"}, Pred: algebra.Eq("S", "b", "R", "b")},
		Right: &algebra.Join{Kind: algebra.FullOuterJoin, Left: &algebra.TableRef{Name: "U"}, Right: &algebra.TableRef{Name: "T"}, Pred: algebra.Eq("U", "d", "T", "d")},
		Pred:  algebra.Eq("T", "c", "R", "c"),
	}
	if !def.Matches(commuted) {
		t.Error("commuted full outer joins must match")
	}
	// A left outer join commuted to a right outer join with swapped inputs
	// also matches.
	loAsRo := &algebra.Join{
		Kind:  algebra.RightOuterJoin,
		Left:  &algebra.Join{Kind: algebra.FullOuterJoin, Left: &algebra.TableRef{Name: "T"}, Right: &algebra.TableRef{Name: "U"}, Pred: algebra.Eq("T", "d", "U", "d")},
		Right: &algebra.Join{Kind: algebra.FullOuterJoin, Left: &algebra.TableRef{Name: "R"}, Right: &algebra.TableRef{Name: "S"}, Pred: algebra.Eq("R", "b", "S", "b")},
		Pred:  algebra.Eq("R", "c", "T", "c"),
	}
	if !def.Matches(loAsRo) {
		t.Error("lo commuted into ro must match")
	}
}

func TestMatchesRejectsDifferentViews(t *testing.T) {
	cat := mustRSTU(t, false)
	def, err := Define(cat, "v1", fixture.V1Expr(false), fixture.V1Output(cat))
	if err != nil {
		t.Fatal(err)
	}
	// Different join kind (inner instead of lo at the root): different
	// terms.
	innerRoot := &algebra.Join{
		Kind:  algebra.InnerJoin,
		Left:  &algebra.Join{Kind: algebra.FullOuterJoin, Left: &algebra.TableRef{Name: "R"}, Right: &algebra.TableRef{Name: "S"}, Pred: algebra.Eq("R", "b", "S", "b")},
		Right: &algebra.Join{Kind: algebra.FullOuterJoin, Left: &algebra.TableRef{Name: "T"}, Right: &algebra.TableRef{Name: "U"}, Pred: algebra.Eq("T", "d", "U", "d")},
		Pred:  algebra.Eq("R", "c", "T", "c"),
	}
	if def.Matches(innerRoot) {
		t.Error("inner-join root must not match an outer-join view")
	}
	// Different predicate constant.
	sel := &algebra.Select{Input: fixture.V1Expr(false), Pred: algebra.CmpConst("R", "b", algebra.OpLt, rel.Int(5))}
	if def.Matches(sel) {
		t.Error("extra selection must not match")
	}
	// Different table set.
	rs := &algebra.Join{Kind: algebra.FullOuterJoin, Left: &algebra.TableRef{Name: "R"}, Right: &algebra.TableRef{Name: "S"}, Pred: algebra.Eq("R", "b", "S", "b")}
	if def.Matches(rs) {
		t.Error("different table set must not match")
	}
	// Invalid expressions never match.
	if def.Matches(&algebra.Dedup{Input: &algebra.TableRef{Name: "R"}}) {
		t.Error("non-SPOJ expression must not match")
	}
}

func TestMatchesSelectionPlacement(t *testing.T) {
	// σ on a table before or conceptually after a join over it: same
	// normal form when the predicate applies to the same terms.
	cat, err := fixture.COL(fixture.COLOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	def, err := Define(cat, "v2", fixture.V2Expr(), fixture.V2Output(cat))
	if err != nil {
		t.Fatal(err)
	}
	if !def.Matches(fixture.V2Expr()) {
		t.Error("V2 must match itself")
	}
}
