package view

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"ojv/internal/fixture"
	"ojv/internal/rel"
)

// faultInjector fails the n-th consultation of the fault hook; its zero
// value never fires. Disabling it turns every consultation into a no-op,
// which is how the harness retries a rolled-back run.
type faultInjector struct {
	failAt   int // 1-based hook consultation to fail at; 0 = never
	calls    int
	site     string // label of the site that fired, "" if none
	disabled bool
}

func (f *faultInjector) hook(site string) error {
	if f.disabled {
		return nil
	}
	f.calls++
	if f.calls == f.failAt {
		f.site = site
		return fmt.Errorf("injected fault at %s", site)
	}
	return nil
}

// fingerprint captures everything a rollback must restore: the stored rows
// (groups for aggregation views), the per-term pattern counters and the
// orphan-index shape.
func fingerprint(m *Maintainer) string {
	var b strings.Builder
	if a := m.Aggregated(); a != nil {
		for _, r := range a.Rows() {
			b.WriteString(rel.EncodeValues(r...))
			b.WriteByte('\n')
		}
		return b.String()
	}
	mv := m.Materialized()
	for _, r := range mv.SortedRows() {
		b.WriteString(rel.EncodeValues(r...))
		b.WriteByte('\n')
	}
	b.WriteString("patterns:")
	for p := uint32(0); p < 1<<uint(len(mv.tableOrder)); p++ {
		if n := mv.patternCount[p]; n != 0 {
			fmt.Fprintf(&b, " %d=%d", p, n)
		}
	}
	b.WriteByte('\n')
	for _, t := range mv.tableOrder {
		total := 0
		for _, set := range mv.perTable[t] {
			total += len(set)
		}
		fmt.Fprintf(&b, "index %s: %d keys %d entries\n", t, len(mv.perTable[t]), total)
	}
	return b.String()
}

// newAggMaintainerOpts is newAggMaintainer with explicit maintenance
// options (the fault scenarios need a FailPoint).
func newAggMaintainerOpts(t testing.TB, withFK bool, opts Options) (*rel.Catalog, *Maintainer) {
	t.Helper()
	cat, err := fixture.COL(fixture.COLOptions{Seed: 11, WithFK: withFK})
	if err != nil {
		t.Fatal(err)
	}
	def, err := DefineAggregate(cat, "v2agg", fixture.V2Expr(), v2AggSpec())
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMaintainer(def, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Materialize(); err != nil {
		t.Fatal(err)
	}
	if err := Check(m); err != nil {
		t.Fatalf("initial aggregate materialization: %v", err)
	}
	return cat, m
}

// faultScenario is one maintenance run to be killed at every mutation site
// in turn. build constructs a fresh fixture with the base-table update
// already applied (maintenance runs after the base tables change) and
// returns the maintainer plus the maintenance operation, which the harness
// runs twice: once with the fault armed, once disarmed.
type faultScenario struct {
	name string
	// wantSites are fault sites the scenario must pass through at least
	// once across all fail indexes.
	wantSites []string
	build     func(t *testing.T, opts Options) (*Maintainer, func() (*MaintStats, error))
}

func faultScenarios() []faultScenario {
	v1Insert := func(strategy Strategy) func(t *testing.T, opts Options) (*Maintainer, func() (*MaintStats, error)) {
		return func(t *testing.T, opts Options) (*Maintainer, func() (*MaintStats, error)) {
			opts.Strategy = strategy
			cat, m := newV1Maintainer(t, false, opts)
			rows := insertRowsFor(cat, "T", 8, 5, false)
			if err := cat.Insert("T", rows); err != nil {
				t.Fatal(err)
			}
			return m, func() (*MaintStats, error) { return m.OnInsert("T", rows) }
		}
	}
	v1Delete := func(strategy Strategy) func(t *testing.T, opts Options) (*Maintainer, func() (*MaintStats, error)) {
		return func(t *testing.T, opts Options) (*Maintainer, func() (*MaintStats, error)) {
			opts.Strategy = strategy
			cat, m := newV1Maintainer(t, false, opts)
			keys := deletableKeys(t, cat, "T", 8, false)
			deleted, err := cat.Delete("T", keys)
			if err != nil {
				t.Fatal(err)
			}
			return m, func() (*MaintStats, error) { return m.OnDelete("T", deleted) }
		}
	}
	return []faultScenario{
		{
			name:      "v1-insert-T",
			wantSites: []string{"primary-insert", "secondary-orphan-delete"},
			build:     v1Insert(StrategyAuto),
		},
		{
			name:      "v1-delete-T",
			wantSites: []string{"primary-delete", "secondary-orphan-insert"},
			build:     v1Delete(StrategyAuto),
		},
		{
			name:      "v1-frombase-insert-T",
			wantSites: []string{"primary-insert", "frombase-orphan-delete"},
			build:     v1Insert(StrategyFromBase),
		},
		{
			name:      "v1-frombase-delete-T",
			wantSites: []string{"primary-delete", "frombase-orphan-insert"},
			build:     v1Delete(StrategyFromBase),
		},
		{
			name:      "v1-modify-T",
			wantSites: []string{"primary-delete", "modify-between-passes", "primary-insert"},
			build: func(t *testing.T, opts Options) (*Maintainer, func() (*MaintStats, error)) {
				cat, m := newV1Maintainer(t, false, opts)
				// Rewire several T rows' join columns: the delete pass tears
				// out their join rows (creating orphans), and the insert
				// pass re-joins them to different R partners (c stays inside
				// the generator domain so the new rows are not dropped by
				// V1's row-preserving left side). Rows() has map order, so
				// sort to keep every fail-index iteration on the same update.
				tRows := cat.Table("T").Rows()
				rel.SortRows(tRows)
				var olds, news []rel.Row
				for i, row := range tRows {
					if i >= 4 {
						break
					}
					old := append(rel.Row(nil), row...)
					nw := append(rel.Row(nil), row...)
					nw[1] = rel.Int((old[1].AsInt() + 1) % 17) // rotate c within the domain
					nw[2] = rel.Int(int64(200 + i))            // d outside it: U side detaches
					if _, err := cat.Update("T", old.Project(cat.Table("T").KeyCols()), nw); err != nil {
						t.Fatal(err)
					}
					olds, news = append(olds, old), append(news, nw)
				}
				return m, func() (*MaintStats, error) { return m.OnModify("T", olds, news) }
			},
		},
		{
			name:      "agg-insert-O",
			wantSites: []string{"agg-primary-fold", "agg-secondary-fold"},
			build: func(t *testing.T, opts Options) (*Maintainer, func() (*MaintStats, error)) {
				cat, m := newAggMaintainerOpts(t, false, opts)
				var rows []rel.Row
				for i := 0; i < 8; i++ {
					rows = append(rows, rel.Row{rel.Int(int64(5000 + i)), rel.Int(int64(i % 30)), rel.Int(int64(1 + i%9))})
				}
				if err := cat.Insert("O", rows); err != nil {
					t.Fatal(err)
				}
				return m, func() (*MaintStats, error) { return m.OnInsert("O", rows) }
			},
		},
		{
			name:      "agg-delete-O",
			wantSites: []string{"agg-primary-fold", "agg-secondary-fold"},
			build: func(t *testing.T, opts Options) (*Maintainer, func() (*MaintStats, error)) {
				cat, m := newAggMaintainerOpts(t, false, opts)
				var keys [][]rel.Value
				for i := 0; i < 8; i++ {
					keys = append(keys, []rel.Value{rel.Int(int64(i))})
				}
				deleted, err := cat.Delete("O", keys)
				if err != nil {
					t.Fatal(err)
				}
				return m, func() (*MaintStats, error) { return m.OnDelete("O", deleted) }
			},
		},
	}
}

// TestFaultInjectionRollback kills every maintenance scenario at each
// mutation site in turn and checks the atomicity contract both ways: after
// the injected fault the view is bit-identical to its pre-run state, and a
// retry with the fault disarmed succeeds and matches full recomputation.
func TestFaultInjectionRollback(t *testing.T) {
	for _, sc := range faultScenarios() {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			seen := make(map[string]bool)
			faults := 0
			for failAt := 1; ; failAt++ {
				if failAt > 2000 {
					t.Fatal("fault matrix did not terminate")
				}
				inj := &faultInjector{failAt: failAt}
				m, op := sc.build(t, Options{FailPoint: inj.hook})
				pre := fingerprint(m)
				stats, err := op()
				if inj.site == "" {
					// The run completed without reaching failAt hook
					// consultations: the matrix is exhausted. This final run
					// had an (unfired) injector and must have succeeded.
					if err != nil {
						t.Fatalf("failAt=%d: unfaulted run failed: %v", failAt, err)
					}
					if !stats.Committed {
						t.Fatalf("failAt=%d: successful run not marked committed", failAt)
					}
					if stats.UndoRecords == 0 {
						t.Fatalf("failAt=%d: successful run logged no undo records", failAt)
					}
					if err := Check(m); err != nil {
						t.Fatalf("failAt=%d: view diverges from recomputation: %v", failAt, err)
					}
					break
				}
				faults++
				seen[inj.site] = true
				if err == nil {
					t.Fatalf("failAt=%d: fault at %s did not surface as an error", failAt, inj.site)
				}
				if stats != nil {
					t.Fatalf("failAt=%d: failed run returned stats", failAt)
				}
				if got := fingerprint(m); got != pre {
					t.Fatalf("failAt=%d: view changed after rollback at %s:\n--- before ---\n%s\n--- after ---\n%s",
						failAt, inj.site, pre, got)
				}
				// Retry with the fault disarmed: maintenance must now succeed
				// and land exactly on the recomputed view.
				inj.disabled = true
				stats, err = op()
				if err != nil {
					t.Fatalf("failAt=%d: retry after rollback at %s failed: %v", failAt, inj.site, err)
				}
				if !stats.Committed {
					t.Fatalf("failAt=%d: retry not marked committed", failAt)
				}
				if err := Check(m); err != nil {
					t.Fatalf("failAt=%d: retried view diverges from recomputation: %v", failAt, err)
				}
			}
			if faults == 0 {
				t.Fatal("no faults fired; scenario exercises no mutation sites")
			}
			for _, site := range sc.wantSites {
				if !seen[site] {
					t.Errorf("fault site %s never reached (seen: %v)", site, seen)
				}
			}
			t.Logf("%d faulted runs, sites %v", faults, seen)
		})
	}
}

// TestOnModifyMergesAllStats pins the merged statistics of a decomposed
// modify against the same update run as a separate delete and insert on a
// twin fixture: row counts (including the per-term secondary breakdown) must
// sum across the passes and the term counts must survive the merge.
func TestOnModifyMergesAllStats(t *testing.T) {
	build := func() (*rel.Catalog, *Maintainer, []rel.Row, []rel.Row) {
		cat, m := newV1Maintainer(t, false, Options{})
		// Rewire every T row so the delete pass is guaranteed to orphan the
		// R-S and U sides (no T row survives to absorb them).
		tRows := cat.Table("T").Rows()
		rel.SortRows(tRows)
		var olds, news []rel.Row
		for i, row := range tRows {
			old := append(rel.Row(nil), row...)
			nw := append(rel.Row(nil), row...)
			nw[1] = rel.Int(int64(300 + i))
			nw[2] = rel.Int(int64(400 + i))
			olds, news = append(olds, old), append(news, nw)
		}
		return cat, m, olds, news
	}

	catA, mA, olds, news := build()
	keys := make([][]rel.Value, len(olds))
	for i, old := range olds {
		keys[i] = old.Project(catA.Table("T").KeyCols())
		if _, err := catA.Update("T", keys[i], news[i]); err != nil {
			t.Fatal(err)
		}
	}
	merged, err := mA.OnModify("T", olds, news)
	if err != nil {
		t.Fatal(err)
	}

	// Twin fixture: same update as delete-all then insert-all. OnModify
	// disables the FK optimizations, but with WithFK=false the plans agree.
	catB, mB, _, _ := build()
	if _, err := catB.Delete("T", keys); err != nil {
		t.Fatal(err)
	}
	del, err := mB.OnDelete("T", olds)
	if err != nil {
		t.Fatal(err)
	}
	if err := catB.Insert("T", news); err != nil {
		t.Fatal(err)
	}
	ins, err := mB.OnInsert("T", news)
	if err != nil {
		t.Fatal(err)
	}
	if err := Check(mB); err != nil {
		t.Fatal(err)
	}

	if del.SecondaryRows == 0 {
		t.Fatal("update produces no delete-pass secondary rows; the merge has nothing to preserve")
	}
	if got, want := merged.PrimaryRows, del.PrimaryRows+ins.PrimaryRows; got != want {
		t.Errorf("merged PrimaryRows = %d, want %d", got, want)
	}
	if got, want := merged.SecondaryRows, del.SecondaryRows+ins.SecondaryRows; got != want {
		t.Errorf("merged SecondaryRows = %d, want %d", got, want)
	}
	if got, want := merged.DirectTerms, max(del.DirectTerms, ins.DirectTerms); got != want {
		t.Errorf("merged DirectTerms = %d, want %d", got, want)
	}
	if got, want := merged.IndirectTerms, max(del.IndirectTerms, ins.IndirectTerms); got != want {
		t.Errorf("merged IndirectTerms = %d, want %d", got, want)
	}
	wantByTerm := make(map[string]int)
	for k, n := range del.SecondaryByTerm {
		wantByTerm[k] += n
	}
	for k, n := range ins.SecondaryByTerm {
		wantByTerm[k] += n
	}
	for k, want := range wantByTerm {
		if merged.SecondaryByTerm[k] != want {
			t.Errorf("merged SecondaryByTerm[%s] = %d, want %d", k, merged.SecondaryByTerm[k], want)
		}
	}
	for k := range merged.SecondaryByTerm {
		if _, ok := wantByTerm[k]; !ok && merged.SecondaryByTerm[k] != 0 {
			t.Errorf("merged SecondaryByTerm has unexpected term %s", k)
		}
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// TestContainsTupleIndexAgreement probes containsTuple on twin views — one
// with the orphan index, one forced onto the scan fallback — and requires
// identical answers for present tuples, absent tuples, and mixed multi-table
// probes where one side's probe set is empty (the short-circuit path).
func TestContainsTupleIndexAgreement(t *testing.T) {
	_, mIdx := newV1Maintainer(t, false, Options{})
	_, mScan := newV1Maintainer(t, false, Options{DisableOrphanIndex: true})
	idx, scan := mIdx.Materialized(), mScan.Materialized()
	if idx.perTable == nil || scan.perTable != nil {
		t.Fatal("fixture views do not differ on the orphan index")
	}

	probe := func(tables []string, encKeys map[string]string) {
		t.Helper()
		got, want := idx.containsTuple(tables, encKeys), scan.containsTuple(tables, encKeys)
		if got != want {
			t.Errorf("containsTuple(%v, %v): index says %v, scan says %v", tables, encKeys, got, want)
		}
	}
	missing := rel.EncodeValues(rel.Int(987654))

	rows := idx.SortedRows()
	for i, row := range rows {
		if i%7 != 0 {
			continue // sample: every row costs four single + three pair probes
		}
		var present []string
		for _, tb := range idx.tableOrder {
			if row[idx.witnessCol[tb]].IsNull() {
				continue
			}
			present = append(present, tb)
			ek := rel.EncodeRowCols(row, idx.keyCols[tb])
			probe([]string{tb}, map[string]string{tb: ek})
			// Same table with an absent key: the probe set is empty and both
			// sides must say false.
			probe([]string{tb}, map[string]string{tb: missing})
		}
		// Pair probes, existing/existing and existing/missing in both orders.
		if len(present) >= 2 {
			a, b := present[0], present[1]
			ea := rel.EncodeRowCols(row, idx.keyCols[a])
			eb := rel.EncodeRowCols(row, idx.keyCols[b])
			probe([]string{a, b}, map[string]string{a: ea, b: eb})
			probe([]string{a, b}, map[string]string{a: ea, b: missing})
			probe([]string{a, b}, map[string]string{a: missing, b: eb})
		}
	}

	// Direct empty-probe regression: when the first table's set is empty the
	// indexed path must answer false without touching the second (possibly
	// huge) set.
	first := idx.tableOrder[0]
	second := idx.tableOrder[1]
	var secondKey string
	for _, row := range rows {
		if !row[idx.witnessCol[second]].IsNull() {
			secondKey = rel.EncodeRowCols(row, idx.keyCols[second])
			break
		}
	}
	if secondKey == "" {
		t.Fatalf("no non-null %s row in the view", second)
	}
	if idx.containsTuple([]string{first, second}, map[string]string{first: missing, second: secondKey}) {
		t.Error("containsTuple = true with an empty probe set on the first table")
	}
}

// TestPlanConcurrentAccess hammers the lazily-populated plan cache from
// several goroutines; the race detector turns unsynchronized cache access
// into a failure.
func TestPlanConcurrentAccess(t *testing.T) {
	_, m := newV1Maintainer(t, true, Options{})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, table := range []string{"R", "S", "T", "U"} {
				for _, fkOK := range []bool{true, false} {
					if _, err := m.Plan(table, fkOK); err != nil {
						t.Errorf("Plan(%s, %v): %v", table, fkOK, err)
					}
				}
			}
		}()
	}
	wg.Wait()
}
