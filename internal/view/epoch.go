package view

import (
	"sort"

	"ojv/internal/rel"
)

// View epochs: immutable snapshots of a stored view, published at
// changeset commit and read without locks.
//
// The Maintainer owns one atomic pointer to the current epoch. While a
// maintenance run stages mutations (and possibly rolls them back), the
// pointer still names the last committed epoch, so concurrent readers
// never observe torn or mid-flush state; CommitStaged resolves the keys
// the run touched against the now-committed stored view and publishes the
// next epoch in O(delta) (see rel/epoch.go for the overlay-chain
// representation and its compaction policy).
//
// Epochs are per view. A reader pinning snapshots of two views (or a view
// and a base table) between two commits may see one side's new epoch and
// the other's old one; within a single snapshot the state is always a
// committed epoch, and per-view sequence numbers are monotonic.

// mvEpoch is one committed epoch of a non-aggregated view: the keyed rows
// plus the per-term pattern counters that back TermCardinality.
type mvEpoch struct {
	rows     *rel.EpochMap[string, rel.Row]
	patterns *rel.EpochMap[uint32, int]
}

// aggEpoch is one committed epoch of an aggregation view. Groups are
// cloned at publish time: the live fold mutates group accumulators in
// place, and a published epoch must never alias them.
type aggEpoch struct {
	groups *rel.EpochMap[string, *aggGroup]
}

// Snapshot is a pinned, immutable view state. All methods are safe for
// unsynchronized concurrent use; the configuration it borrows from the
// stored view (schema, table order, key columns) is immutable after view
// creation.
type Snapshot struct {
	mv  *Materialized
	agg *AggMaterialized
	mve *mvEpoch
	age *aggEpoch
}

// Epoch returns the snapshot's per-view sequence number; successive
// published epochs of one view carry strictly increasing numbers.
func (s *Snapshot) Epoch() uint64 {
	if s.age != nil {
		return s.age.groups.Seq()
	}
	return s.mve.rows.Seq()
}

// Schema returns the view's output schema.
func (s *Snapshot) Schema() rel.Schema {
	if s.agg != nil {
		return s.agg.schema
	}
	return s.mv.schema
}

// Len returns the number of rows (or groups) as of the epoch.
func (s *Snapshot) Len() int {
	if s.age != nil {
		return s.age.groups.Len()
	}
	return s.mve.rows.Len()
}

// Rows returns the view contents as of the epoch. The slice is fresh;
// for aggregation views the rows are assembled per call with SQL
// aggregate NULL semantics, sorted like AggMaterialized.Rows.
func (s *Snapshot) Rows() []rel.Row {
	if s.age != nil {
		return s.agg.rowsFrom(s.age.groups.Len(), s.age.groups.Range)
	}
	out := make([]rel.Row, 0, s.mve.rows.Len())
	s.mve.rows.Range(func(_ string, r rel.Row) bool {
		out = append(out, r)
		return true
	})
	return out
}

// SortedRows returns Rows sorted by encoded value, for deterministic
// fingerprinting in tests and tools.
func (s *Snapshot) SortedRows() []rel.Row {
	rows := s.Rows()
	sort.Slice(rows, func(i, j int) bool {
		return rel.EncodeValues(rows[i]...) < rel.EncodeValues(rows[j]...)
	})
	return rows
}

// TermCardinality returns the number of rows whose source-table set is
// exactly the given set, as of the epoch; 0 for aggregation views.
func (s *Snapshot) TermCardinality(tables []string) int {
	if s.mve == nil {
		return 0
	}
	n, _ := s.mve.patterns.Get(s.mv.patternOf(tables))
	return n
}

// Snapshot returns the current committed epoch, or nil when snapshots
// were never enabled (direct Maintainer users pay only this nil check and
// a nil check per stored-view mutation).
func (m *Maintainer) Snapshot() *Snapshot {
	if m.agg != nil {
		e := m.aggEp.Load()
		if e == nil {
			return nil
		}
		m.pins.Add(1)
		return &Snapshot{agg: m.agg, age: e}
	}
	e := m.mvEp.Load()
	if e == nil {
		return nil
	}
	m.pins.Add(1)
	return &Snapshot{mv: m.mv, mve: e}
}

// EnableSnapshots publishes the first epoch and switches on dirty-key
// tracking, making Snapshot non-nil from here on. The Database facade
// calls it under its write lock when it registers a view; callers must
// hold whatever lock serializes maintenance.
func (m *Maintainer) EnableSnapshots() {
	m.pins = m.opts.Metrics.Counter("view.epoch.pins")
	m.publishFull()
}

// publishFull copies the stored view into a fresh epoch and resets dirty
// tracking. Used at enablement and after Materialize, which replaces the
// stored maps wholesale.
func (m *Maintainer) publishFull() {
	m.epochSeq++
	if m.agg != nil {
		a := m.agg
		a.dirtyGroups = make(map[string]struct{})
		m.aggEp.Store(&aggEpoch{groups: rel.NewFullEpoch(m.epochSeq, a.groups, (*aggGroup).clone)})
	} else {
		mv := m.mv
		mv.dirtyKeys = make(map[string]struct{})
		mv.dirtyPatterns = make(map[uint32]struct{})
		m.mvEp.Store(&mvEpoch{
			rows:     rel.NewFullEpoch(m.epochSeq, mv.rows, nil),
			patterns: rel.NewFullEpoch(m.epochSeq, mv.patternCount, nil),
		})
	}
	m.countPublish(false)
}

// publishEpoch publishes the epoch after a committed changeset: every key
// the run touched (including keys whose mutation was undone — they
// resolve to their unchanged committed value) is resolved against the
// stored view into one overlay. No-op until EnableSnapshots. Callers must
// hold whatever lock serializes maintenance.
func (m *Maintainer) publishEpoch() {
	if m.agg != nil {
		prev := m.aggEp.Load()
		if prev == nil {
			return
		}
		a := m.agg
		if len(a.dirtyGroups) == 0 {
			return
		}
		m.epochSeq++
		groups, compacted := rel.PublishEpoch(prev.groups, m.epochSeq, a.dirtyGroups, func(k string) (*aggGroup, bool) {
			g, ok := a.groups[k]
			return g, ok
		}, (*aggGroup).clone)
		clear(a.dirtyGroups)
		m.aggEp.Store(&aggEpoch{groups: groups})
		m.countPublish(compacted)
		return
	}
	prev := m.mvEp.Load()
	if prev == nil {
		return
	}
	mv := m.mv
	if len(mv.dirtyKeys) == 0 && len(mv.dirtyPatterns) == 0 {
		return
	}
	m.epochSeq++
	rows, compacted := rel.PublishEpoch(prev.rows, m.epochSeq, mv.dirtyKeys, func(k string) (rel.Row, bool) {
		r, ok := mv.rows[k]
		return r, ok
	}, nil)
	patterns, pCompacted := rel.PublishEpoch(prev.patterns, m.epochSeq, mv.dirtyPatterns, func(p uint32) (int, bool) {
		n, ok := mv.patternCount[p]
		return n, ok
	}, nil)
	clear(mv.dirtyKeys)
	clear(mv.dirtyPatterns)
	m.mvEp.Store(&mvEpoch{rows: rows, patterns: patterns})
	m.countPublish(compacted || pCompacted)
}

// snapshotsEnabled reports whether EnableSnapshots has run.
func (m *Maintainer) snapshotsEnabled() bool {
	if m.agg != nil {
		return m.aggEp.Load() != nil
	}
	return m.mvEp.Load() != nil
}

// countPublish records the epoch metrics for one publish.
func (m *Maintainer) countPublish(compacted bool) {
	m.opts.Metrics.Add("view.epoch.published", 1)
	m.opts.Metrics.Set("view.epoch.seq", int64(m.epochSeq))
	if compacted {
		m.opts.Metrics.Add("view.epoch.compactions", 1)
	}
}

// rowsFrom assembles the SQL-visible rows of an aggregation view from any
// group iterator (the live map or a pinned epoch), sorted by encoded row.
func (a *AggMaterialized) rowsFrom(n int, iter func(func(string, *aggGroup) bool)) []rel.Row {
	spec := a.def.Agg
	out := make([]rel.Row, 0, n)
	iter(func(_ string, g *aggGroup) bool {
		row := make(rel.Row, 0, len(a.schema))
		row = append(row, g.key...)
		for i, ag := range spec.Aggs {
			row = append(row, g.aggValue(ag, i))
		}
		out = append(out, row)
		return true
	})
	sort.Slice(out, func(i, j int) bool {
		return rel.EncodeValues(out[i]...) < rel.EncodeValues(out[j]...)
	})
	return out
}
