package view

import (
	"fmt"
	"sort"
	"testing"

	"ojv/internal/algebra"
)

// This file is the plan checker ("plan ck"): a static verifier that proves
// a compiled maintenance plan well-formed before it runs. It re-derives the
// paper's structural invariants with independent algorithms — the normal
// form and maintenance graph via algebra.VerifyNormalForm /
// algebra.VerifyMaintGraph (§2.2, §2.3, §3.1, §6.2), the ΔV^D operator
// tree's shape under the §4 transform and the §4.1 left-deep conversion
// (λ/δ placement under rules 1, 4 and 5), the §6.1 simplification outcome,
// the §5.3 per-parent base expressions behind each indirect cleanup, and
// the §5.2 prerequisites of the from-view strategy.
//
// The checker runs automatically after every plan compilation when
// Options.VerifyPlans is set, and always under go test, so every existing
// random maintenance test doubles as a fuzzer of the planner.

// shouldVerify reports whether freshly compiled plans are verified.
func (m *Maintainer) shouldVerify() bool {
	return m.opts.VerifyPlans || testing.Testing()
}

// VerifyAllPlans compiles (or fetches from cache) and verifies the
// maintenance plan of every referenced table under both update contracts:
// plain insert/delete batches (fkOK) and decomposed modifies (the §6
// exclusions).
func (m *Maintainer) VerifyAllPlans() error {
	for _, t := range m.def.tables {
		seen := make(map[bool]bool, 2)
		for _, fkOK := range []bool{true, false} {
			eff := fkOK && !m.opts.DisableFKGraph
			if seen[eff] {
				continue
			}
			seen[eff] = true
			p, err := m.Plan(t, fkOK)
			if err != nil {
				return err
			}
			if err := m.VerifyPlan(p, eff); err != nil {
				return err
			}
		}
	}
	return nil
}

// VerifyPlan statically checks one compiled plan. fkOK must be the
// effective foreign-key contract the plan was built under (i.e. after the
// DisableFKGraph ablation was applied).
func (m *Maintainer) VerifyPlan(p *tablePlan, fkOK bool) error {
	if p == nil {
		return m.viol("3", "plan is nil")
	}
	wantNF := m.def.nf
	if !fkOK {
		wantNF = m.def.nfNoFK
	}
	if p.nf != wantNF {
		return m.viol("6.2", "plan for table %s is not built on the definition's normal form for fk=%v updates", p.table, fkOK)
	}
	if p.graph == nil || p.graph.NF != p.nf || p.graph.Updated != p.table {
		return m.viol("3.1", "plan's maintenance graph does not describe table %s over the plan's normal form", p.table)
	}
	var fks algebra.FKProvider
	if fkOK {
		fks = m.def.cat
	}
	if err := algebra.VerifyMaintGraph(p.graph, fks); err != nil {
		return fmt.Errorf("view %s: %w", m.def.Name, err)
	}
	if err := m.verifyPrimary(p, fkOK); err != nil {
		return err
	}
	if err := m.verifyIndirect(p); err != nil {
		return err
	}
	return m.verifyStrategy(p)
}

// viol formats a section-numbered plan invariant violation.
func (m *Maintainer) viol(section, format string, args ...any) error {
	return fmt.Errorf("view %s: plan invariant violation (§%s): %s", m.def.Name, section, fmt.Sprintf(format, args...))
}

// verifyPrimary checks the ΔV^D expression: presence, operator-tree shape,
// and agreement with an independent re-run of the §4/§4.1/§6.1 pipeline.
func (m *Maintainer) verifyPrimary(p *tablePlan, fkOK bool) error {
	fkSimplify := fkOK && !m.opts.DisableFKSimplify
	if len(p.graph.DirectTerms()) == 0 {
		if p.primary != nil {
			return m.viol("4", "plan carries a primary delta but no term is directly affected")
		}
		return nil
	}
	if p.primary == nil && !fkSimplify {
		return m.viol("6.1", "primary delta is missing though FK simplification is off; only SimplifyTree may prove ΔV^D empty")
	}
	if p.primary != nil {
		if err := m.verifyPrimaryShape(p.primary, p.table, !m.opts.DisableLeftDeep); err != nil {
			return err
		}
	}
	// Recompute-and-compare: the cached tree must be exactly what the
	// transform pipeline produces (catches cache corruption and mutation of
	// shared trees; BuildPrimaryDelta clones, so this is side-effect free).
	rebuilt, err := BuildPrimaryDelta(m.def.cat, m.def.Expr, p.table, !m.opts.DisableLeftDeep, fkSimplify)
	if err != nil {
		return m.viol("4", "primary delta cannot be rebuilt: %v", err)
	}
	switch {
	case rebuilt == nil && p.primary != nil:
		return m.viol("6.1", "cached primary delta exists but SimplifyTree proves ΔV^D empty")
	case rebuilt != nil && p.primary == nil:
		return m.viol("6.1", "cached primary delta is empty but the §4 transform yields a plan")
	case rebuilt != nil && algebra.FormatTree(rebuilt) != algebra.FormatTree(p.primary):
		return m.viol("4.1", "cached primary delta differs from the §4 transform's output:\n%svs\n%s", algebra.FormatTree(p.primary), algebra.FormatTree(rebuilt))
	}
	return nil
}

// verifyPrimaryShape checks the ΔV^D operator tree structurally: allowed
// node set, a single delta leaf in leftmost position, main-path join kinds
// weakened per §4 step 2, and — in left-deep mode — λ/δ placed only as
// rules 1, 4 and 5 of §4.1 permit.
func (m *Maintainer) verifyPrimaryShape(e algebra.Expr, table string, leftDeep bool) error {
	leaf := e
descend:
	for {
		switch n := leaf.(type) {
		case *algebra.Select:
			leaf = n.Input
		case *algebra.NullIf:
			leaf = n.Input
		case *algebra.Condense:
			leaf = n.Input
		case *algebra.Join:
			leaf = n.Left
		default:
			break descend
		}
	}
	if d, ok := leaf.(*algebra.DeltaRef); !ok || d.Name != table {
		return m.viol("4", "ΔV^D must have Δ%s as its leftmost leaf, found %s", table, leaf)
	}
	deltas := 0
	var walk func(e, parent algebra.Expr, onSpine bool) error
	walk = func(e, parent algebra.Expr, onSpine bool) error {
		switch n := e.(type) {
		case *algebra.DeltaRef:
			deltas++
			if n.Name != table {
				return m.viol("4", "delta leaf Δ%s does not match the updated table %s", n.Name, table)
			}
			return nil
		case *algebra.TableRef:
			return nil
		case *algebra.Select:
			return walk(n.Input, e, onSpine)
		case *algebra.Join:
			switch n.Kind {
			case algebra.InnerJoin, algebra.LeftOuterJoin:
			case algebra.RightOuterJoin, algebra.FullOuterJoin:
				if leftDeep || onSpine {
					return m.viol("4", "%s join is not permitted on the ΔV^D main path (step 2 converts ro→join and fo→lo)", n.Kind)
				}
			default:
				return m.viol("4", "%s join is not an SPOJ operator", n.Kind)
			}
			if leftDeep && !isLeafish(n.Right) {
				return m.viol("4.1", "join right operand %T is not a base-table leaf; the tree is not left-deep", n.Right)
			}
			if err := walk(n.Left, e, onSpine); err != nil {
				return err
			}
			return walk(n.Right, e, false)
		case *algebra.NullIf:
			if !leftDeep {
				return m.viol("4.1", "λ appears in a bushy ΔV^D plan; only the left-deep conversion introduces it")
			}
			if _, ok := parent.(*algebra.Condense); !ok {
				return m.viol("4.1", "λ must sit directly under its condensing δ (rules 1, 4 and 5)")
			}
			// The λ body is a left outer join at creation; later passes may
			// rewrite it into a nested δλ stack when the body's own right
			// operand needed a rule 1/4/5 pull.
			switch in := n.Input.(type) {
			case *algebra.Join:
				if in.Kind != algebra.LeftOuterJoin {
					return m.viol("4.1", "λ must apply to a left outer join (rules 1, 4 and 5), found %s join", in.Kind)
				}
			case *algebra.Condense:
			default:
				return m.viol("4.1", "λ must apply to a left outer join or a nested δ (rules 1, 4 and 5), found %T", n.Input)
			}
			if _, isTrue := n.Unless.(algebra.TruePred); isTrue {
				return m.viol("4.1", "λ with a trivially true condition nulls nothing and must not be emitted")
			}
			if len(n.NullTables) == 0 {
				return m.viol("4.1", "λ must null at least one table")
			}
			return walk(n.Input, e, onSpine)
		case *algebra.Condense:
			if !leftDeep {
				return m.viol("4.1", "δ appears in a bushy ΔV^D plan; only the left-deep conversion introduces it")
			}
			ni, ok := n.Input.(*algebra.NullIf)
			if !ok {
				return m.viol("4.1", "δ must condense a λ output (rules 1, 4 and 5), found %T", n.Input)
			}
			bodySet := algebra.TableSet(ni.Input)
			nullSet := make(map[string]bool, len(ni.NullTables))
			for _, t := range ni.NullTables {
				if !bodySet[t] {
					return m.viol("4.1", "λ nulls table %s, which its input does not carry", t)
				}
				nullSet[t] = true
			}
			var keep []string
			for t := range bodySet {
				if !nullSet[t] {
					keep = append(keep, t)
				}
			}
			if len(keep) == 0 {
				return m.viol("4.1", "λ/δ would null every table of its input")
			}
			sort.Strings(keep)
			if want := termKeyCols(m.def.cat, keep); !colRefsEqual(n.GroupKey, want) {
				return m.viol("4.1", "δ group key %v does not cover exactly the keys of the preserved tables %v", n.GroupKey, keep)
			}
			return walk(n.Input, e, onSpine)
		default:
			return m.viol("4", "%T is not permitted in a ΔV^D plan", e)
		}
	}
	if err := walk(e, nil, true); err != nil {
		return err
	}
	if deltas != 1 {
		return m.viol("4", "ΔV^D must reference the delta exactly once, found %d references", deltas)
	}
	if leftDeep && !IsLeftDeep(e) {
		return m.viol("4.1", "plan tree is not left-deep")
	}
	return nil
}

func colRefsEqual(a, b []algebra.ColRef) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// verifyIndirect checks the secondary-delta plans: exact coverage of the
// indirectly affected terms in larger-terms-first order, mask consistency,
// one §5.3 base expression per directly affected parent, and the shape of
// those expressions.
func (m *Maintainer) verifyIndirect(p *tablePlan) error {
	nf := p.nf
	graph := p.graph
	want := graph.IndirectTerms()
	if len(p.indirect) != len(want) {
		return m.viol("5.3", "plan cleans %d indirect terms, the maintenance graph has %d", len(p.indirect), len(want))
	}
	bits := m.tableBits()
	wantIdx := make(map[string]int, len(want))
	for _, ti := range want {
		wantIdx[nf.Terms[ti].SourceKey()] = ti
	}
	for i, ip := range p.indirect {
		if i > 0 && len(p.indirect[i-1].term.Tables) < len(ip.term.Tables) {
			return m.viol("5.2", "indirect cleanups must process larger terms first ({%s} before {%s}): a new orphan must be visible to later containment checks", ip.term.SourceKey(), p.indirect[i-1].term.SourceKey())
		}
		ti, ok := wantIdx[ip.term.SourceKey()]
		if !ok {
			return m.viol("5.3", "plan cleans term {%s}, which is not an indirectly affected term (or is cleaned twice)", ip.term.SourceKey())
		}
		delete(wantIdx, ip.term.SourceKey())
		if len(ip.tiSet) != len(ip.term.Tables) {
			return m.viol("5.3", "term set of {%s} is inconsistent", ip.term.SourceKey())
		}
		for _, t := range ip.term.Tables {
			if !ip.tiSet[t] {
				return m.viol("5.3", "term set of {%s} is missing %s", ip.term.SourceKey(), t)
			}
		}
		if ip.tiMask != maskOf(ip.term.Tables, bits) {
			return m.viol("5.3", "bitmask of term {%s} does not match its source set", ip.term.SourceKey())
		}
		direct := graph.DirectParents[ti]
		if len(ip.parents) != len(direct) || len(ip.parentMasks) != len(direct) {
			return m.viol("3.1", "term {%s} needs one base expression per directly affected parent: have %d, want %d", ip.term.SourceKey(), len(ip.parents), len(direct))
		}
		for k, pk := range direct {
			if ip.parentMasks[k] != maskOf(nf.Terms[pk].Tables, bits) {
				return m.viol("5.3", "parent mask %d of term {%s} does not match parent {%s}", k, ip.term.SourceKey(), nf.Terms[pk].SourceKey())
			}
		}
		var extras uint32
		for _, pk := range graph.IndirectParents[ti] {
			for _, t := range nf.Terms[pk].Tables {
				if !ip.tiSet[t] {
					extras |= 1 << bits[t]
				}
			}
		}
		if ip.indirectExtrasMask != extras {
			return m.viol("5.3", "Qi extra-table mask of term {%s} does not match its indirectly affected parents", ip.term.SourceKey())
		}
		for k, pb := range ip.parents {
			if err := m.verifyParentBase(ip.term, pb, graph.Updated, k); err != nil {
				return err
			}
		}
	}
	for key := range wantIdx {
		return m.viol("5.3", "indirectly affected term {%s} has no cleanup plan", key)
	}
	return nil
}

// verifyParentBase checks one parent's E'ip expressions (§5.3): inner-join
// trees over the parent's extra tables and exactly one reference to the
// updated table — its OLD state for insertions, current state for
// deletions — with no delta leaves.
func (m *Maintainer) verifyParentBase(term algebra.Term, pb parentBase, updated string, k int) error {
	check := func(e algebra.Expr, insert bool) error {
		kind := "deletion"
		if insert {
			kind = "insertion"
		}
		updatedRefs := 0
		var walk func(e algebra.Expr) error
		walk = func(e algebra.Expr) error {
			switch n := e.(type) {
			case *algebra.TableRef:
				if n.Name == updated {
					if insert {
						return m.viol("5.3", "%s cleanup of {%s} must read the pre-update state %sᵒ, not the current table", kind, term.SourceKey(), updated)
					}
					updatedRefs++
				}
				return nil
			case *algebra.OldTableRef:
				if n.Name != updated || !insert {
					return m.viol("5.3", "%s cleanup of {%s} must not read the pre-update state of %s", kind, term.SourceKey(), n.Name)
				}
				updatedRefs++
				return nil
			case *algebra.Select:
				return walk(n.Input)
			case *algebra.Join:
				if n.Kind != algebra.InnerJoin {
					return m.viol("5.3", "parent base expression %d of {%s} must use inner joins only, found %s", k, term.SourceKey(), n.Kind)
				}
				if err := walk(n.Left); err != nil {
					return err
				}
				return walk(n.Right)
			default:
				return m.viol("5.3", "%T is not permitted in a parent base expression", e)
			}
		}
		if e == nil {
			return m.viol("5.3", "parent base expression %d of {%s} is missing", k, term.SourceKey())
		}
		if err := walk(e); err != nil {
			return err
		}
		if updatedRefs != 1 {
			return m.viol("5.3", "parent base expression %d of {%s} must reference the updated table exactly once, found %d", k, term.SourceKey(), updatedRefs)
		}
		return nil
	}
	if err := check(pb.exprInsert, true); err != nil {
		return err
	}
	return check(pb.exprDelete, false)
}

// verifyStrategy checks the §5.2 prerequisites when the from-view strategy
// is forced: the stored rows must be SPOJ rows (not aggregate groups) and
// must expose every referenced table's key columns for the orphan
// containment checks.
func (m *Maintainer) verifyStrategy(p *tablePlan) error {
	if m.opts.Strategy != StrategyFromView {
		return nil
	}
	if m.agg != nil {
		return m.viol("5.2", "StrategyFromView needs the stored SPOJ rows, but an aggregation view stores only group rows; use StrategyFromBase")
	}
	if len(p.indirect) == 0 {
		return nil
	}
	if m.mv == nil {
		return m.viol("5.2", "StrategyFromView requires a materialized view")
	}
	for _, t := range m.def.tables {
		if len(m.mv.keyCols[t]) == 0 {
			return m.viol("5.2", "StrategyFromView requires the view to expose the key columns of %s for orphan checks", t)
		}
	}
	return nil
}
