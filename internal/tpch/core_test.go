package tpch

import (
	"testing"

	"ojv/internal/view"
)

// TestCoreViewMaintenance checks the inner-join core view (the paper's
// comparison baseline) against the oracle under the same lineitem churn as
// the outer-join view, and confirms the structural difference: the core
// view has a single term, so no update ever needs orphan cleanup.
func TestCoreViewMaintenance(t *testing.T) {
	db := genSmall(t)
	def, err := view.Define(db.Catalog, "V3core", V3CoreExpr(), V3Output())
	if err != nil {
		t.Fatal(err)
	}
	if got := len(def.NormalForm().Terms); got != 1 {
		t.Fatalf("core view has %d terms, want 1", got)
	}
	m, err := view.NewMaintainer(def, view.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Materialize(); err != nil {
		t.Fatal(err)
	}
	if err := view.Check(m); err != nil {
		t.Fatal(err)
	}
	rows := db.NewLineitems(150)
	if err := db.Catalog.Insert("lineitem", rows); err != nil {
		t.Fatal(err)
	}
	st, err := m.OnInsert("lineitem", rows)
	if err != nil {
		t.Fatal(err)
	}
	if st.IndirectTerms != 0 || st.SecondaryRows != 0 {
		t.Errorf("core view must have no secondary delta: %+v", st)
	}
	if err := view.Check(m); err != nil {
		t.Fatal(err)
	}
	keys := db.SampleLineitemKeys(200)
	deleted, err := db.Catalog.Delete("lineitem", keys)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.OnDelete("lineitem", deleted); err != nil {
		t.Fatal(err)
	}
	if err := view.Check(m); err != nil {
		t.Fatal(err)
	}
	// Inserting customers or parts cannot affect the inner-join view at
	// all: every term requires a joining lineitem, and foreign keys
	// guarantee new customers/parts have none.
	cRows := db.NewCustomers(10)
	if err := db.Catalog.Insert("customer", cRows); err != nil {
		t.Fatal(err)
	}
	st, err = m.OnInsert("customer", cRows)
	if err != nil {
		t.Fatal(err)
	}
	if st.PrimaryRows != 0 {
		t.Errorf("customer insert must not touch the core view: %+v", st)
	}
	if err := view.Check(m); err != nil {
		t.Fatal(err)
	}
}
