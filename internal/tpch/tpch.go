// Package tpch provides a deterministic generator for the TPC-H subset the
// paper's experiments use — customer, orders, lineitem and part — plus the
// experimental views of Section 7 (V3 and its inner-join "core view") and
// Example 1's oj_view.
//
// The generator preserves the structure the experiments depend on:
// cardinality ratios (150k customers : 1.5M orders : ~6M lineitems : 200k
// parts per scale factor), the primary keys and declared foreign keys
// (lineitem→orders, lineitem→part, orders→customer), TPC-H's
// o_orderdate range (1992-01-01..1998-08-02, of which V3's selection keeps
// roughly seven months) and retail price range (so p_retailprice<2000 keeps
// most but not all parts), and the "customers without orders" population
// (only 7 in 8 customer keys receive orders). Absolute row counts are
// scaled down by the scale factor; the experiments compare relative costs,
// which survive scaling.
package tpch

import (
	"fmt"
	"math/rand"

	"ojv/internal/rel"
)

// Config controls generation.
type Config struct {
	// ScaleFactor scales the TPC-H base cardinalities. The paper runs SF=1
	// (≈6M lineitems); the default here is 0.01 (≈60k lineitems), which
	// preserves every ratio the experiments depend on.
	ScaleFactor float64
	// Seed drives the deterministic generator.
	Seed int64
}

// Cardinalities of TPC-H at scale factor 1.
const (
	customersPerSF = 150000
	ordersPerSF    = 1500000
	partsPerSF     = 200000
)

// DB is a generated TPC-H database.
type DB struct {
	Catalog *rel.Catalog
	Config  Config
	// NextLinenumber returns a fresh line number for an order, for
	// fabricating FK-valid lineitem inserts.
	nextLine map[int64]int64
	rng      *rand.Rand
	orders   int
	parts    int
}

var (
	segments    = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY"}
	returnFlags = []string{"R", "A", "N"}
	partTypes   = []string{"STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"}
)

// dateEpoch numbers: TPC-H order dates span 1992-01-01 to 1998-08-02.
var (
	dateLo = rel.MustDate("1992-01-01").AsInt()
	dateHi = rel.MustDate("1998-08-02").AsInt()
)

// Generate builds and loads a TPC-H database with the paper's indexes and
// foreign keys.
func Generate(cfg Config) (*DB, error) {
	if cfg.ScaleFactor <= 0 {
		cfg.ScaleFactor = 0.01
	}
	nCustomers := scale(customersPerSF, cfg.ScaleFactor)
	nOrders := scale(ordersPerSF, cfg.ScaleFactor)
	nParts := scale(partsPerSF, cfg.ScaleFactor)

	cat := rel.NewCatalog()
	if err := createSchema(cat); err != nil {
		return nil, err
	}
	db := &DB{Catalog: cat, Config: cfg, nextLine: make(map[int64]int64), rng: rand.New(rand.NewSource(cfg.Seed)), orders: nOrders, parts: nParts}

	var rows []rel.Row
	for i := 1; i <= nCustomers; i++ {
		rows = append(rows, rel.Row{
			rel.Int(int64(i)),
			rel.Str(fmt.Sprintf("Customer#%09d", i)),
			rel.Int(db.rng.Int63n(25)),
			rel.Str(segments[db.rng.Intn(len(segments))]),
			rel.Float(float64(db.rng.Intn(1000000)) / 100),
		})
	}
	if err := cat.Insert("customer", rows); err != nil {
		return nil, err
	}

	rows = rows[:0]
	for i := 1; i <= nParts; i++ {
		// Scale-invariant analogue of TPC-H's retail price formula: prices
		// span 900..~2100 with roughly 1 part in 40 priced at 2000 or more,
		// so V3's p_retailprice<2000 predicate keeps ~97.5% of parts at any
		// scale factor — the COL/COLP ratio of the paper's Table 1.
		price := 900 + float64((i*7919)%1000)
		if i%40 == 0 {
			price += 1150
		}
		rows = append(rows, rel.Row{
			rel.Int(int64(i)),
			rel.Str(fmt.Sprintf("Part#%09d", i)),
			rel.Str(partTypes[db.rng.Intn(len(partTypes))]),
			rel.Float(price),
		})
	}
	if err := cat.Insert("part", rows); err != nil {
		return nil, err
	}

	rows = rows[:0]
	for i := 1; i <= nOrders; i++ {
		rows = append(rows, rel.Row{
			rel.Int(int64(i)),
			rel.Int(db.randCustkey(nCustomers)),
			rel.Date(dateLo + db.rng.Int63n(dateHi-dateLo+1)),
			rel.Str(fmt.Sprintf("Clerk#%06d", db.rng.Intn(1000))),
			rel.Str([]string{"O", "F", "P"}[db.rng.Intn(3)]),
		})
	}
	if err := cat.Insert("orders", rows); err != nil {
		return nil, err
	}

	rows = rows[:0]
	for o := 1; o <= nOrders; o++ {
		n := 1 + db.rng.Intn(7)
		db.nextLine[int64(o)] = int64(n) + 1
		for l := 1; l <= n; l++ {
			rows = append(rows, db.lineitemRow(int64(o), int64(l)))
		}
	}
	if err := cat.Insert("lineitem", rows); err != nil {
		return nil, err
	}

	if err := cat.AddForeignKey("orders", []string{"o_custkey"}, "customer", []string{"c_custkey"}); err != nil {
		return nil, err
	}
	if err := cat.AddForeignKey("lineitem", []string{"l_orderkey"}, "orders", []string{"o_orderkey"}); err != nil {
		return nil, err
	}
	if err := cat.AddForeignKey("lineitem", []string{"l_partkey"}, "part", []string{"p_partkey"}); err != nil {
		return nil, err
	}
	// The FK declarations above created indexes on o_custkey, l_orderkey
	// and l_partkey, which are exactly the probe paths maintenance needs;
	// the primary keys cover the rest.
	return db, nil
}

func scale(base int, sf float64) int {
	n := int(float64(base) * sf)
	if n < 1 {
		n = 1
	}
	return n
}

// randCustkey picks an order's customer: TPC-H leaves one customer key in
// eight without orders (the spec skips keys ≡ 0 mod 3 out of 3; we use 1/8
// to keep the orphan-customer population that feeds V3's C term while
// retaining realistic orders-per-customer).
func (db *DB) randCustkey(nCustomers int) int64 {
	for {
		k := 1 + db.rng.Int63n(int64(nCustomers))
		if k%8 != 0 {
			return k
		}
	}
}

func (db *DB) lineitemRow(orderkey, linenumber int64) rel.Row {
	qty := 1 + db.rng.Int63n(50)
	partkey := 1 + db.rng.Int63n(int64(db.parts))
	return rel.Row{
		rel.Int(orderkey),
		rel.Int(linenumber),
		rel.Int(partkey),
		rel.Int(qty),
		rel.Float(float64(qty) * (900 + float64(db.rng.Intn(120000))/100)),
		rel.Date(dateLo + db.rng.Int63n(dateHi-dateLo+121)),
		rel.Str(returnFlags[db.rng.Intn(len(returnFlags))]),
	}
}

func createSchema(cat *rel.Catalog) error {
	if _, err := cat.CreateTable("customer", []rel.Column{
		{Name: "c_custkey", Kind: rel.KindInt},
		{Name: "c_name", Kind: rel.KindString},
		{Name: "c_nationkey", Kind: rel.KindInt},
		{Name: "c_mktsegment", Kind: rel.KindString},
		{Name: "c_acctbal", Kind: rel.KindFloat},
	}, "c_custkey"); err != nil {
		return err
	}
	if _, err := cat.CreateTable("orders", []rel.Column{
		{Name: "o_orderkey", Kind: rel.KindInt},
		{Name: "o_custkey", Kind: rel.KindInt, NotNull: true},
		{Name: "o_orderdate", Kind: rel.KindDate},
		{Name: "o_clerk", Kind: rel.KindString},
		{Name: "o_orderstatus", Kind: rel.KindString},
	}, "o_orderkey"); err != nil {
		return err
	}
	if _, err := cat.CreateTable("lineitem", []rel.Column{
		{Name: "l_orderkey", Kind: rel.KindInt, NotNull: true},
		{Name: "l_linenumber", Kind: rel.KindInt},
		{Name: "l_partkey", Kind: rel.KindInt, NotNull: true},
		{Name: "l_quantity", Kind: rel.KindInt},
		{Name: "l_extendedprice", Kind: rel.KindFloat},
		{Name: "l_shipdate", Kind: rel.KindDate},
		{Name: "l_returnflag", Kind: rel.KindString},
	}, "l_orderkey", "l_linenumber"); err != nil {
		return err
	}
	if _, err := cat.CreateTable("part", []rel.Column{
		{Name: "p_partkey", Kind: rel.KindInt},
		{Name: "p_name", Kind: rel.KindString},
		{Name: "p_type", Kind: rel.KindString},
		{Name: "p_retailprice", Kind: rel.KindFloat},
	}, "p_partkey"); err != nil {
		return err
	}
	return nil
}

// NewLineitems fabricates n foreign-key-valid lineitem rows referencing
// random existing orders and parts, with fresh line numbers.
func (db *DB) NewLineitems(n int) []rel.Row {
	rows := make([]rel.Row, 0, n)
	for i := 0; i < n; i++ {
		o := 1 + db.rng.Int63n(int64(db.orders))
		l := db.nextLine[o]
		if l == 0 {
			l = 100
		}
		db.nextLine[o] = l + 1
		rows = append(rows, db.lineitemRow(o, l))
	}
	return rows
}

// SampleLineitemKeys returns n deterministically sampled existing lineitem
// keys for deletion and holdout workloads. Sampling proceeds by whole
// orders (all line items of a randomly chosen order at a time), mirroring
// the TPC-H refresh streams: batches arrive and depart as complete order
// line sets, which is what makes insertions de-orphan customer and part
// tuples (Table 1's C and P rows) and deletions re-orphan them.
func (db *DB) SampleLineitemKeys(n int) [][]rel.Value {
	t := db.Catalog.Table("lineitem")
	keys := make([][]rel.Value, 0, n)
	visited := make(map[int64]bool)
	for len(keys) < n && len(visited) < db.orders {
		o := 1 + db.rng.Int63n(int64(db.orders))
		if visited[o] {
			continue
		}
		visited[o] = true
		for l := int64(1); ; l++ {
			row, ok := t.Get(rel.Int(o), rel.Int(l))
			if !ok {
				break
			}
			keys = append(keys, row.Project(t.KeyCols()))
			if len(keys) == n {
				break
			}
		}
	}
	return keys
}

// HoldOutLineitems removes n deterministically sampled lineitem rows from
// the loaded database and returns them. This prepares the paper's insertion
// workload: the held-out rows are inserted back during the measured
// maintenance run, so the insertion genuinely re-orphans and de-orphans
// customer and part tuples (Table 1's C and P "rows affected").
func (db *DB) HoldOutLineitems(n int) ([]rel.Row, error) {
	keys := db.SampleLineitemKeys(n)
	return db.Catalog.Delete("lineitem", keys)
}

// NewCustomers fabricates n new customer rows with fresh keys.
func (db *DB) NewCustomers(n int) []rel.Row {
	t := db.Catalog.Table("customer")
	base := int64(t.Len()*10 + 1000000)
	rows := make([]rel.Row, 0, n)
	for i := 0; i < n; i++ {
		k := base + int64(i)
		rows = append(rows, rel.Row{
			rel.Int(k),
			rel.Str(fmt.Sprintf("Customer#%09d", k)),
			rel.Int(db.rng.Int63n(25)),
			rel.Str(segments[db.rng.Intn(len(segments))]),
			rel.Float(float64(db.rng.Intn(1000000)) / 100),
		})
	}
	return rows
}

// NewParts fabricates n new part rows with fresh keys.
func (db *DB) NewParts(n int) []rel.Row {
	t := db.Catalog.Table("part")
	base := int64(t.Len()*10 + 1000000)
	rows := make([]rel.Row, 0, n)
	for i := 0; i < n; i++ {
		k := base + int64(i)
		rows = append(rows, rel.Row{
			rel.Int(k),
			rel.Str(fmt.Sprintf("Part#%09d", k)),
			rel.Str(partTypes[db.rng.Intn(len(partTypes))]),
			rel.Float(900 + float64(db.rng.Intn(120000))/100),
		})
	}
	return rows
}
