package tpch

import (
	"strings"
	"testing"

	"ojv/internal/rel"
	"ojv/internal/view"
)

func genSmall(t testing.TB) *DB {
	t.Helper()
	db, err := Generate(Config{ScaleFactor: 0.002, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestGenerateCardinalities(t *testing.T) {
	db := genSmall(t)
	c := db.Catalog
	if got := c.Table("customer").Len(); got != 300 {
		t.Errorf("customers = %d, want 300", got)
	}
	if got := c.Table("orders").Len(); got != 3000 {
		t.Errorf("orders = %d, want 3000", got)
	}
	if got := c.Table("part").Len(); got != 400 {
		t.Errorf("parts = %d, want 400", got)
	}
	l := c.Table("lineitem").Len()
	if l < 3000 || l > 21000 {
		t.Errorf("lineitems = %d, want 1..7 per order", l)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := genSmall(t)
	b := genSmall(t)
	if a.Catalog.Table("lineitem").Len() != b.Catalog.Table("lineitem").Len() {
		t.Error("generation is not deterministic")
	}
	ra := a.Catalog.Table("orders").Rows()
	rel.SortRows(ra)
	rb := b.Catalog.Table("orders").Rows()
	rel.SortRows(rb)
	for i := range ra {
		if !ra[i].Equal(rb[i]) {
			t.Fatalf("row %d differs: %s vs %s", i, ra[i], rb[i])
		}
	}
}

func TestGenerateSomeCustomersHaveNoOrders(t *testing.T) {
	db := genSmall(t)
	used := make(map[int64]bool)
	ot := db.Catalog.Table("orders")
	ck := ot.Schema().MustIndexOf("orders", "o_custkey")
	for _, r := range ot.Rows() {
		used[r[ck].AsInt()] = true
	}
	orphans := 0
	for _, r := range db.Catalog.Table("customer").Rows() {
		if !used[r[0].AsInt()] {
			orphans++
		}
	}
	if orphans == 0 {
		t.Error("expected some customers without orders (V3's C term)")
	}
}

func TestV3NormalFormTerms(t *testing.T) {
	db := genSmall(t)
	def, err := view.Define(db.Catalog, "V3", V3Expr(), V3Output())
	if err != nil {
		t.Fatal(err)
	}
	nf := def.NormalForm()
	var keys []string
	for _, term := range nf.Terms {
		keys = append(keys, term.SourceKey())
	}
	// Table 1: terms COLP, COL, C, P.
	want := "customer,lineitem,orders,part customer,lineitem,orders customer part"
	if got := strings.Join(keys, " "); got != want {
		t.Errorf("V3 terms = %q, want %q", got, want)
	}
}

func TestV3MaintenanceGraphMatchesPaper(t *testing.T) {
	db := genSmall(t)
	def, err := view.Define(db.Catalog, "V3", V3Expr(), V3Output())
	if err != nil {
		t.Fatal(err)
	}
	m, err := view.NewMaintainer(def, view.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// "Because of the foreign key constraint between lineitem and orders,
	// insertion or deletion of order rows does not affect the view."
	plan, err := m.Plan("orders", true)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(plan.Graph().DirectTerms()) + len(plan.Graph().IndirectTerms()); n != 0 {
		t.Errorf("orders updates should not affect V3; %d affected terms (%s)", n, plan.Graph())
	}
	// "When inserting (or deleting) customer rows ... we only need to add
	// (or delete) the customer in the view."
	planC, err := m.Plan("customer", true)
	if err != nil {
		t.Fatal(err)
	}
	if got := planC.Graph().String(); got != "{customer}D" {
		t.Errorf("customer graph = %q", got)
	}
	// "However, updating lineitem can affect all four terms."
	planL, err := m.Plan("lineitem", true)
	if err != nil {
		t.Fatal(err)
	}
	if d, i := len(planL.Graph().DirectTerms()), len(planL.Graph().IndirectTerms()); d != 2 || i != 2 {
		t.Errorf("lineitem graph: direct=%d indirect=%d (%s), want 2 direct (COLP, COL) and 2 indirect (C, P)", d, i, planL.Graph())
	}
}

func TestV3IncrementalMaintenance(t *testing.T) {
	db := genSmall(t)
	def, err := view.Define(db.Catalog, "V3", V3Expr(), V3Output())
	if err != nil {
		t.Fatal(err)
	}
	m, err := view.NewMaintainer(def, view.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Materialize(); err != nil {
		t.Fatal(err)
	}
	if err := view.Check(m); err != nil {
		t.Fatalf("initial: %v", err)
	}
	// Insert lineitems (the Figure 5(a) workload at small scale).
	rows := db.NewLineitems(120)
	if err := db.Catalog.Insert("lineitem", rows); err != nil {
		t.Fatal(err)
	}
	stats, err := m.OnInsert("lineitem", rows)
	if err != nil {
		t.Fatal(err)
	}
	if err := view.Check(m); err != nil {
		t.Fatalf("after lineitem insert: %v", err)
	}
	if stats.PrimaryRows == 0 {
		t.Error("no primary delta rows; the date window should catch some inserts")
	}
	// Insert customers: term-local.
	cRows := db.NewCustomers(50)
	if err := db.Catalog.Insert("customer", cRows); err != nil {
		t.Fatal(err)
	}
	cStats, err := m.OnInsert("customer", cRows)
	if err != nil {
		t.Fatal(err)
	}
	if cStats.PrimaryRows != 50 || cStats.SecondaryRows != 0 {
		t.Errorf("customer insert: primary=%d secondary=%d, want 50/0", cStats.PrimaryRows, cStats.SecondaryRows)
	}
	if err := view.Check(m); err != nil {
		t.Fatalf("after customer insert: %v", err)
	}
	// Insert parts: term-local.
	pRows := db.NewParts(50)
	if err := db.Catalog.Insert("part", pRows); err != nil {
		t.Fatal(err)
	}
	pStats, err := m.OnInsert("part", pRows)
	if err != nil {
		t.Fatal(err)
	}
	if pStats.PrimaryRows != 50 || pStats.SecondaryRows != 0 {
		t.Errorf("part insert: primary=%d secondary=%d, want 50/0", pStats.PrimaryRows, pStats.SecondaryRows)
	}
	if err := view.Check(m); err != nil {
		t.Fatalf("after part insert: %v", err)
	}
	// Delete lineitems (Figure 5(b) workload).
	keys := db.SampleLineitemKeys(150)
	deleted, err := db.Catalog.Delete("lineitem", keys)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.OnDelete("lineitem", deleted); err != nil {
		t.Fatal(err)
	}
	if err := view.Check(m); err != nil {
		t.Fatalf("after lineitem delete: %v", err)
	}
}

func TestOJViewMaintenance(t *testing.T) {
	db := genSmall(t)
	def, err := view.Define(db.Catalog, "oj_view", OJViewExpr(), OJViewOutput())
	if err != nil {
		t.Fatal(err)
	}
	// The introduction's analysis: three tuple types.
	if got := len(def.NormalForm().Terms); got != 3 {
		t.Fatalf("oj_view has %d terms, want 3", got)
	}
	m, err := view.NewMaintainer(def, view.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Materialize(); err != nil {
		t.Fatal(err)
	}
	// Inserting parts/orders is pure insertion of null-extended rows.
	pRows := db.NewParts(20)
	if err := db.Catalog.Insert("part", pRows); err != nil {
		t.Fatal(err)
	}
	st, err := m.OnInsert("part", pRows)
	if err != nil {
		t.Fatal(err)
	}
	if st.SecondaryRows != 0 || st.IndirectTerms != 0 {
		t.Errorf("part insert should be term-local: %+v", st)
	}
	if err := view.Check(m); err != nil {
		t.Fatal(err)
	}
	// Inserting lineitems triggers the Example 1 orphan cleanup.
	lRows := db.NewLineitems(200)
	if err := db.Catalog.Insert("lineitem", lRows); err != nil {
		t.Fatal(err)
	}
	st, err = m.OnInsert("lineitem", lRows)
	if err != nil {
		t.Fatal(err)
	}
	if st.IndirectTerms != 2 {
		t.Errorf("lineitem insert should clean up orders and part orphans: %+v", st)
	}
	if err := view.Check(m); err != nil {
		t.Fatal(err)
	}
	// And deleting them recreates orphans.
	keys := db.SampleLineitemKeys(300)
	deleted, err := db.Catalog.Delete("lineitem", keys)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.OnDelete("lineitem", deleted); err != nil {
		t.Fatal(err)
	}
	if err := view.Check(m); err != nil {
		t.Fatal(err)
	}
}
