package tpch

import (
	"ojv/internal/algebra"
	"ojv/internal/rel"
)

// V3DateLo and V3DateHi delimit V3's o_orderdate selection.
var (
	V3DateLo = rel.MustDate("1994-06-01")
	V3DateHi = rel.MustDate("1994-12-31")
)

// V3Expr is the experimental view of Section 7:
//
//	((lineitem ⋈ σ[o_orderdate in 1994-06-01..1994-12-31] orders
//	    on l_orderkey=o_orderkey)
//	  right outer join customer on c_custkey=o_custkey)
//	 full outer join part on l_partkey=p_partkey and p_retailprice<2000.
func V3Expr() algebra.Expr {
	return v3Shape(algebra.RightOuterJoin, algebra.FullOuterJoin)
}

// V3CoreExpr is the corresponding core view: every outer join replaced by an
// inner join (the paper's comparison baseline in Figure 5).
func V3CoreExpr() algebra.Expr {
	return v3Shape(algebra.InnerJoin, algebra.InnerJoin)
}

func v3Shape(custJoin, partJoin algebra.JoinKind) algebra.Expr {
	dateSel := algebra.MakeAnd(
		algebra.CmpConst("orders", "o_orderdate", algebra.OpGe, V3DateLo),
		algebra.CmpConst("orders", "o_orderdate", algebra.OpLe, V3DateHi),
	)
	lo := &algebra.Join{
		Kind:  algebra.InnerJoin,
		Left:  &algebra.TableRef{Name: "lineitem"},
		Right: &algebra.Select{Input: &algebra.TableRef{Name: "orders"}, Pred: dateSel},
		Pred:  algebra.Eq("lineitem", "l_orderkey", "orders", "o_orderkey"),
	}
	loc := &algebra.Join{
		Kind:  custJoin,
		Left:  lo,
		Right: &algebra.TableRef{Name: "customer"},
		Pred:  algebra.Eq("customer", "c_custkey", "orders", "o_custkey"),
	}
	return &algebra.Join{
		Kind:  partJoin,
		Left:  loc,
		Right: &algebra.TableRef{Name: "part"},
		Pred: algebra.MakeAnd(
			algebra.Eq("lineitem", "l_partkey", "part", "p_partkey"),
			algebra.CmpConst("part", "p_retailprice", algebra.OpLt, rel.Float(2000)),
		),
	}
}

// V3Output is the paper's select list (it already contains every base
// table's key columns, as Define requires).
func V3Output() []algebra.ColRef {
	return []algebra.ColRef{
		algebra.Col("lineitem", "l_orderkey"),
		algebra.Col("lineitem", "l_linenumber"),
		algebra.Col("lineitem", "l_quantity"),
		algebra.Col("lineitem", "l_extendedprice"),
		algebra.Col("lineitem", "l_shipdate"),
		algebra.Col("lineitem", "l_returnflag"),
		algebra.Col("orders", "o_orderkey"),
		algebra.Col("orders", "o_orderdate"),
		algebra.Col("orders", "o_clerk"),
		algebra.Col("customer", "c_custkey"),
		algebra.Col("customer", "c_nationkey"),
		algebra.Col("customer", "c_mktsegment"),
		algebra.Col("part", "p_partkey"),
		algebra.Col("part", "p_type"),
		algebra.Col("part", "p_retailprice"),
	}
}

// OJViewExpr is Example 1's view: part full outer join (orders left outer
// join lineitem on l_orderkey=o_orderkey) on p_partkey=l_partkey.
func OJViewExpr() algebra.Expr {
	return &algebra.Join{
		Kind: algebra.FullOuterJoin,
		Left: &algebra.TableRef{Name: "part"},
		Right: &algebra.Join{
			Kind:  algebra.LeftOuterJoin,
			Left:  &algebra.TableRef{Name: "orders"},
			Right: &algebra.TableRef{Name: "lineitem"},
			Pred:  algebra.Eq("lineitem", "l_orderkey", "orders", "o_orderkey"),
		},
		Pred: algebra.Eq("part", "p_partkey", "lineitem", "l_partkey"),
	}
}

// OJViewOutput is Example 1's select list, extended with l_orderkey so the
// view outputs lineitem's full key.
func OJViewOutput() []algebra.ColRef {
	return []algebra.ColRef{
		algebra.Col("part", "p_partkey"),
		algebra.Col("part", "p_name"),
		algebra.Col("part", "p_retailprice"),
		algebra.Col("orders", "o_orderkey"),
		algebra.Col("orders", "o_custkey"),
		algebra.Col("lineitem", "l_orderkey"),
		algebra.Col("lineitem", "l_linenumber"),
		algebra.Col("lineitem", "l_quantity"),
		algebra.Col("lineitem", "l_extendedprice"),
	}
}
