// Package fixture provides the paper's example schemas, views and
// deterministic synthetic data, shared by tests, benchmarks, examples and
// the command-line tools:
//
//   - V1 (Example 2): (R fo S) lo (T fo U) over abstract tables, with an
//     optional foreign key U.tfk→T.tk (Example 10).
//   - V2 (Example 11): σ(C) fo (σ(O) fo L), with an optional foreign key
//     L.lok→O.ok.
//
// The TPC-H views of the experimental section live in internal/tpch.
package fixture

import (
	"fmt"
	"math/rand"

	"ojv/internal/algebra"
	"ojv/internal/rel"
)

// RSTUOptions configures the abstract four-table database.
type RSTUOptions struct {
	// Rows is the approximate per-table row count.
	Rows int
	// Seed drives the deterministic generator.
	Seed int64
	// WithFK declares U.tfk→T.tk and uses T.tk=U.tfk as the T-U join
	// predicate (the Example 10 setting). Only half of T's keys are ever
	// referenced so the other half stays deletable under RESTRICT.
	WithFK bool
}

// RSTU builds the abstract R,S,T,U catalog with deterministic data.
//
// Schema: R(rk,b,c), S(sk,b), T(tk,c,d), U(uk,d,tfk). The join attributes
// draw from small domains so every outer-join case (match, multi-match,
// orphan) occurs.
func RSTU(opt RSTUOptions) (*rel.Catalog, error) {
	if opt.Rows <= 0 {
		opt.Rows = 40
	}
	c := rel.NewCatalog()
	mk := func(name string, cols []rel.Column, key string) error {
		_, err := c.CreateTable(name, cols, key)
		return err
	}
	intCol := func(n string) rel.Column { return rel.Column{Name: n, Kind: rel.KindInt} }
	if err := mk("R", []rel.Column{intCol("rk"), intCol("b"), intCol("c")}, "rk"); err != nil {
		return nil, err
	}
	if err := mk("S", []rel.Column{intCol("sk"), intCol("b")}, "sk"); err != nil {
		return nil, err
	}
	if err := mk("T", []rel.Column{intCol("tk"), intCol("c"), intCol("d")}, "tk"); err != nil {
		return nil, err
	}
	ucols := []rel.Column{intCol("uk"), intCol("d")}
	if opt.WithFK {
		ucols = append(ucols, rel.Column{Name: "tfk", Kind: rel.KindInt, NotNull: true})
	}
	if err := mk("U", ucols, "uk"); err != nil {
		return nil, err
	}

	rng := rand.New(rand.NewSource(opt.Seed))
	dom := int64(opt.Rows/2 + 2)
	val := func() rel.Value { return rel.Int(rng.Int63n(dom)) }

	var rRows, sRows, tRows, uRows []rel.Row
	for i := 0; i < opt.Rows; i++ {
		rRows = append(rRows, rel.Row{rel.Int(int64(i)), val(), val()})
		sRows = append(sRows, rel.Row{rel.Int(int64(i)), val()})
		tRows = append(tRows, rel.Row{rel.Int(int64(i)), val(), val()})
	}
	for i := 0; i < opt.Rows; i++ {
		row := rel.Row{rel.Int(int64(i)), val()}
		if opt.WithFK {
			// Reference only even T keys, leaving odd keys deletable.
			row = append(row, rel.Int(2*rng.Int63n(int64(opt.Rows)/2)))
		}
		uRows = append(uRows, row)
	}
	if err := c.Insert("R", rRows); err != nil {
		return nil, err
	}
	if err := c.Insert("S", sRows); err != nil {
		return nil, err
	}
	if err := c.Insert("T", tRows); err != nil {
		return nil, err
	}
	if err := c.Insert("U", uRows); err != nil {
		return nil, err
	}
	if opt.WithFK {
		if err := c.AddForeignKey("U", []string{"tfk"}, "T", []string{"tk"}); err != nil {
			return nil, err
		}
	}
	// Secondary indexes on the join attributes (the experiments assume the
	// base tables are indexed for maintenance probes).
	for _, ix := range []struct{ table, col string }{
		{"R", "b"}, {"R", "c"}, {"S", "b"}, {"T", "c"}, {"T", "d"}, {"U", "d"},
	} {
		if _, err := c.CreateIndex(ix.table, ix.table+"_"+ix.col, ix.col); err != nil {
			return nil, err
		}
	}
	if opt.WithFK {
		if _, err := c.CreateIndex("U", "U_tfk", "tfk"); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// V1Expr is the running example V1 = (R fo[R.b=S.b] S) lo[R.c=T.c]
// (T fo[p] U) where p is T.d=U.d, or T.tk=U.tfk when withFK.
func V1Expr(withFK bool) algebra.Expr {
	tu := algebra.Eq("T", "d", "U", "d")
	if withFK {
		tu = algebra.Eq("T", "tk", "U", "tfk")
	}
	return &algebra.Join{
		Kind:  algebra.LeftOuterJoin,
		Left:  &algebra.Join{Kind: algebra.FullOuterJoin, Left: &algebra.TableRef{Name: "R"}, Right: &algebra.TableRef{Name: "S"}, Pred: algebra.Eq("R", "b", "S", "b")},
		Right: &algebra.Join{Kind: algebra.FullOuterJoin, Left: &algebra.TableRef{Name: "T"}, Right: &algebra.TableRef{Name: "U"}, Pred: tu},
		Pred:  algebra.Eq("R", "c", "T", "c"),
	}
}

// V1Output projects every column of every table (which trivially includes
// all key columns, as Define requires).
func V1Output(cat *rel.Catalog) []algebra.ColRef {
	return AllColumns(cat, "R", "S", "T", "U")
}

// AllColumns returns ColRefs for every column of the named tables.
func AllColumns(cat *rel.Catalog, tables ...string) []algebra.ColRef {
	var out []algebra.ColRef
	for _, t := range tables {
		sch, ok := cat.TableSchema(t)
		if !ok {
			panic(fmt.Sprintf("fixture: unknown table %s", t))
		}
		for _, c := range sch {
			out = append(out, algebra.Col(c.Table, c.Name))
		}
	}
	return out
}

// COLOptions configures the customer/order/line-item style database of V2.
type COLOptions struct {
	Customers int
	Orders    int
	Lineitems int
	Seed      int64
	// WithFK declares L.lok→O.ok (the Figure 4(b) setting).
	WithFK bool
}

// COL builds the C,O,L catalog of Example 11 with deterministic data.
// Schema: C(ck,a), O(ok,ock,a), L(lk,lok). O.ock references a customer key
// in [0, 2×Customers) so roughly half the orders are dangling unless the
// caller sizes domains differently; L.lok references an order key in
// [0, Orders) (valid when WithFK).
func COL(opt COLOptions) (*rel.Catalog, error) {
	if opt.Customers <= 0 {
		opt.Customers = 30
	}
	if opt.Orders <= 0 {
		opt.Orders = 60
	}
	if opt.Lineitems <= 0 {
		opt.Lineitems = 120
	}
	c := rel.NewCatalog()
	intCol := func(n string) rel.Column { return rel.Column{Name: n, Kind: rel.KindInt} }
	if _, err := c.CreateTable("C", []rel.Column{intCol("ck"), intCol("a")}, "ck"); err != nil {
		return nil, err
	}
	if _, err := c.CreateTable("O", []rel.Column{intCol("ok"), {Name: "ock", Kind: rel.KindInt, NotNull: true}, intCol("a")}, "ok"); err != nil {
		return nil, err
	}
	if _, err := c.CreateTable("L", []rel.Column{intCol("lk"), {Name: "lok", Kind: rel.KindInt, NotNull: true}}, "lk"); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	var rows []rel.Row
	for i := 0; i < opt.Customers; i++ {
		rows = append(rows, rel.Row{rel.Int(int64(i)), rel.Int(rng.Int63n(10))})
	}
	if err := c.Insert("C", rows); err != nil {
		return nil, err
	}
	rows = nil
	for i := 0; i < opt.Orders; i++ {
		rows = append(rows, rel.Row{rel.Int(int64(i)), rel.Int(rng.Int63n(int64(2 * opt.Customers))), rel.Int(rng.Int63n(10))})
	}
	if err := c.Insert("O", rows); err != nil {
		return nil, err
	}
	rows = nil
	for i := 0; i < opt.Lineitems; i++ {
		rows = append(rows, rel.Row{rel.Int(int64(i)), rel.Int(rng.Int63n(int64(opt.Orders)))})
	}
	if err := c.Insert("L", rows); err != nil {
		return nil, err
	}
	if opt.WithFK {
		if err := c.AddForeignKey("L", []string{"lok"}, "O", []string{"ok"}); err != nil {
			return nil, err
		}
	}
	for _, ix := range []struct{ table, col string }{{"O", "ock"}, {"L", "lok"}} {
		if _, err := c.CreateIndex(ix.table, ix.table+"_"+ix.col, ix.col); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// V2Expr is V2 = σ[C.a>0](C) fo[ck=ock] (σ[O.a>0](O) fo[ok=lok] L).
func V2Expr() algebra.Expr {
	return &algebra.Join{
		Kind: algebra.FullOuterJoin,
		Left: &algebra.Select{Input: &algebra.TableRef{Name: "C"}, Pred: algebra.CmpConst("C", "a", algebra.OpGt, rel.Int(0))},
		Right: &algebra.Join{
			Kind:  algebra.FullOuterJoin,
			Left:  &algebra.Select{Input: &algebra.TableRef{Name: "O"}, Pred: algebra.CmpConst("O", "a", algebra.OpGt, rel.Int(0))},
			Right: &algebra.TableRef{Name: "L"},
			Pred:  algebra.Eq("O", "ok", "L", "lok"),
		},
		Pred: algebra.Eq("C", "ck", "O", "ock"),
	}
}

// V2Output projects all columns of C, O and L.
func V2Output(cat *rel.Catalog) []algebra.ColRef {
	return AllColumns(cat, "C", "O", "L")
}
