package fixture

import (
	"math/rand"
	"testing"

	"ojv/internal/algebra"
	"ojv/internal/rel"
)

func TestRSTUDeterministic(t *testing.T) {
	a, err := RSTU(RSTUOptions{Rows: 20, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RSTU(RSTUOptions{Rows: 20, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"R", "S", "T", "U"} {
		ra, rb := a.Table(name).Rows(), b.Table(name).Rows()
		rel.SortRows(ra)
		rel.SortRows(rb)
		if len(ra) != len(rb) {
			t.Fatalf("%s: %d vs %d rows", name, len(ra), len(rb))
		}
		for i := range ra {
			if !ra[i].Equal(rb[i]) {
				t.Fatalf("%s row %d differs", name, i)
			}
		}
	}
}

func TestRSTUWithFKIsValid(t *testing.T) {
	cat, err := RSTU(RSTUOptions{Rows: 30, Seed: 2, WithFK: true})
	if err != nil {
		t.Fatal(err)
	}
	// The FK is declared (AddForeignKey validates existing rows).
	fks := cat.ForeignKeys("U")
	if len(fks) != 1 || fks[0].RefTable != "T" {
		t.Fatalf("U FKs = %v", fks)
	}
	// Odd T keys are never referenced: deletable under RESTRICT.
	if _, err := cat.Delete("T", [][]rel.Value{{rel.Int(1)}}); err != nil {
		t.Errorf("odd T key should be deletable: %v", err)
	}
}

func TestCOLWithFKIsValid(t *testing.T) {
	cat, err := COL(COLOptions{Seed: 2, WithFK: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(cat.ForeignKeys("L")) != 1 {
		t.Error("L should have one FK")
	}
	// V2 defines over this catalog.
	if _, err := algebra.Normalize(V2Expr(), cat); err != nil {
		t.Fatal(err)
	}
}

func TestV1ExprShapes(t *testing.T) {
	plain := V1Expr(false)
	if len(plain.Tables()) != 4 {
		t.Errorf("V1 tables = %v", plain.Tables())
	}
	nf, err := algebra.Normalize(plain, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(nf.Terms) != 7 {
		t.Errorf("V1 has %d terms, want 7", len(nf.Terms))
	}
	// The FK variant joins T-U on the foreign key.
	fk := V1Expr(true)
	j := fk.(*algebra.Join).Right.(*algebra.Join)
	if j.Pred.String() != "T.tk=U.tfk" {
		t.Errorf("FK variant T-U predicate = %s", j.Pred)
	}
}

func TestAllColumnsPanicsOnUnknownTable(t *testing.T) {
	cat, err := RSTU(RSTUOptions{Rows: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("unknown table must panic")
		}
	}()
	AllColumns(cat, "nosuch")
}

func TestRandSPOJProducesValidViews(t *testing.T) {
	for seed := 0; seed < 50; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)))
		cat, err := RandCatalog(rng, 5)
		if err != nil {
			t.Fatal(err)
		}
		e := RandSPOJ(rng)
		if len(e.Tables()) < 2 {
			t.Fatalf("seed %d: too few tables: %v", seed, e.Tables())
		}
		// Every generated expression normalizes (is a valid SPOJ tree) and
		// its output covers all tables.
		nf, err := algebra.Normalize(e, nil)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(nf.Terms) == 0 {
			t.Fatalf("seed %d: empty normal form", seed)
		}
		out := RandOutput(cat, e)
		if len(out) != 3*len(e.Tables()) {
			t.Fatalf("seed %d: output = %d cols", seed, len(out))
		}
	}
}
