// Package ojv is a library for materialized outer-join views with efficient
// incremental maintenance, reproducing Larson & Zhou, "Efficient
// Maintenance of Materialized Outer-Join Views" (ICDE 2007).
//
// It bundles an in-memory relational engine (typed values with SQL NULL
// semantics, base tables with unique keys, secondary indexes and enforced
// foreign keys) with the paper's maintenance machinery: join-disjunctive
// normal forms, subsumption and maintenance graphs, primary- and
// secondary-delta computation, and foreign-key-based simplification.
//
// Quick start:
//
//	db := ojv.NewDatabase()
//	db.MustCreateTable("part", ojv.Cols(
//	    ojv.IntCol("p_partkey"), ojv.StrCol("p_name")), "p_partkey")
//	...
//	v, err := db.CreateView("pv",
//	    ojv.Table("part").FullJoin(
//	        ojv.Table("orders").LeftJoin(ojv.Table("lineitem"),
//	            ojv.Eq("lineitem", "l_orderkey", "orders", "o_orderkey")),
//	        ojv.Eq("part", "p_partkey", "lineitem", "l_partkey")),
//	    ojv.Columns("part.p_partkey", ...))
//	db.Insert("lineitem", rows) // the view is maintained incrementally
package ojv

import (
	"fmt"
	"io"
	"strings"
	"sync"

	"ojv/internal/algebra"
	"ojv/internal/exec"
	"ojv/internal/obs"
	"ojv/internal/rel"
	"ojv/internal/view"
)

// Re-exported substrate types. Values, rows and schemas are shared with the
// internal engine; the aliases make them constructible through this public
// package.
type (
	// Value is a single SQL value (integer, float, string, bool, date or
	// NULL).
	Value = rel.Value
	// Row is a tuple of values.
	Row = rel.Row
	// Column describes a base-table column.
	Column = rel.Column
	// Schema is an ordered list of columns.
	Schema = rel.Schema
	// Pred is a predicate over view tuples.
	Pred = algebra.Pred
	// ColRef names a column as (table, column).
	ColRef = algebra.ColRef
	// Options tunes the maintenance planner: ablation switches plus the
	// Parallelism worker cap for delta evaluation (0 = GOMAXPROCS, 1 =
	// serial) and the executor's BatchSize (rows per pipeline batch, 0 =
	// default; results are identical at every setting of either knob).
	Options = view.Options
	// MaintStats reports what one maintenance run did.
	MaintStats = view.MaintStats
	// AggSpec describes the group-by of an aggregation view.
	AggSpec = view.AggSpec
	// Aggregate is one aggregate output of an aggregation view.
	Aggregate = algebra.Aggregate
	// Strategy selects how the secondary delta is computed (Section 5).
	Strategy = view.Strategy
	// Tracer records nested maintenance spans when set on Options.Tracer;
	// export the recorded forest with WriteChromeTrace.
	Tracer = obs.Tracer
	// Span is one timed phase of a maintenance run.
	Span = obs.Span
	// Metrics holds named atomic counters and histograms when set on
	// Options.Metrics; export a snapshot with WriteJSON.
	Metrics = obs.Registry
)

// Secondary-delta strategies (Sections 5.2 and 5.3).
const (
	StrategyAuto     = view.StrategyAuto
	StrategyFromView = view.StrategyFromView
	StrategyFromBase = view.StrategyFromBase
)

// Value constructors.
var (
	// Null is the SQL NULL marker.
	Null = rel.Null
)

// Int returns an integer value.
func Int(v int64) Value { return rel.Int(v) }

// Float returns a floating-point value.
func Float(v float64) Value { return rel.Float(v) }

// Str returns a string value.
func Str(v string) Value { return rel.Str(v) }

// Bool returns a boolean value.
func Bool(v bool) Value { return rel.Bool(v) }

// MustDate parses a YYYY-MM-DD date, panicking on malformed input.
func MustDate(s string) Value { return rel.MustDate(s) }

// NewTracer returns an empty maintenance tracer; set it on Options.Tracer
// when creating views to record one span tree per maintenance run.
func NewTracer() *Tracer { return obs.NewTracer() }

// NewMetrics returns an empty metrics registry; set it on Options.Metrics
// when creating views to collect executor and maintenance counters.
func NewMetrics() *Metrics { return obs.NewRegistry() }

// IntCol declares an integer column.
func IntCol(name string) Column { return Column{Name: name, Kind: rel.KindInt} }

// FloatCol declares a float column.
func FloatCol(name string) Column { return Column{Name: name, Kind: rel.KindFloat} }

// StrCol declares a string column.
func StrCol(name string) Column { return Column{Name: name, Kind: rel.KindString} }

// DateCol declares a date column.
func DateCol(name string) Column { return Column{Name: name, Kind: rel.KindDate} }

// NotNull marks a column NOT NULL (required for foreign-key columns).
func NotNull(c Column) Column { c.NotNull = true; return c }

// Cols collects column declarations.
func Cols(cols ...Column) []Column { return cols }

// Predicate constructors.

// Eq returns the equijoin predicate t1.c1 = t2.c2.
func Eq(t1, c1, t2, c2 string) Pred { return algebra.Eq(t1, c1, t2, c2) }

// CmpOp re-exports the comparison operators.
const (
	OpEq = algebra.OpEq
	OpNe = algebra.OpNe
	OpLt = algebra.OpLt
	OpLe = algebra.OpLe
	OpGt = algebra.OpGt
	OpGe = algebra.OpGe
)

// Cmp returns the predicate t.c <op> v for a constant v.
func Cmp(t, c string, op algebra.CmpOp, v Value) Pred { return algebra.CmpConst(t, c, op, v) }

// And returns the conjunction of predicates.
func And(ps ...Pred) Pred { return algebra.MakeAnd(ps...) }

// Col names a column as "table", "column".
func Col(table, column string) ColRef { return algebra.Col(table, column) }

// Columns parses "table.column" strings into column references.
func Columns(qualified ...string) []ColRef {
	out := make([]ColRef, len(qualified))
	for i, q := range qualified {
		parts := strings.SplitN(q, ".", 2)
		if len(parts) != 2 {
			panic(fmt.Sprintf("ojv: column %q is not table.column", q))
		}
		out[i] = algebra.Col(parts[0], parts[1])
	}
	return out
}

// Rel is a fluent builder for SPOJ view expressions.
type Rel struct{ e algebra.Expr }

// Table starts an expression from a base table.
func Table(name string) Rel { return Rel{e: &algebra.TableRef{Name: name}} }

// ExprRel wraps an algebra expression as a Rel (for tools and tests within
// this module that generate expressions directly).
func ExprRel(e algebra.Expr) Rel { return Rel{e: e} }

// Where applies a selection.
func (r Rel) Where(p Pred) Rel { return Rel{e: &algebra.Select{Input: r.e, Pred: p}} }

// Join inner-joins with another relation.
func (r Rel) Join(o Rel, on Pred) Rel {
	return Rel{e: &algebra.Join{Kind: algebra.InnerJoin, Left: r.e, Right: o.e, Pred: on}}
}

// LeftJoin left-outer-joins with another relation.
func (r Rel) LeftJoin(o Rel, on Pred) Rel {
	return Rel{e: &algebra.Join{Kind: algebra.LeftOuterJoin, Left: r.e, Right: o.e, Pred: on}}
}

// RightJoin right-outer-joins with another relation.
func (r Rel) RightJoin(o Rel, on Pred) Rel {
	return Rel{e: &algebra.Join{Kind: algebra.RightOuterJoin, Left: r.e, Right: o.e, Pred: on}}
}

// FullJoin full-outer-joins with another relation.
func (r Rel) FullJoin(o Rel, on Pred) Rel {
	return Rel{e: &algebra.Join{Kind: algebra.FullOuterJoin, Left: r.e, Right: o.e, Pred: on}}
}

// Expr exposes the underlying algebra expression (for tools and tests
// within this module).
func (r Rel) Expr() algebra.Expr { return r.e }

// Count, CountCol, Sum and Avg build aggregates for aggregation views.
func Count(name string) Aggregate { return Aggregate{Func: algebra.AggCount, Name: name} }

// CountCol counts non-null values of a column.
func CountCol(c ColRef, name string) Aggregate {
	return Aggregate{Func: algebra.AggCount, Col: c, Name: name}
}

// Sum sums a column.
func Sum(c ColRef, name string) Aggregate { return Aggregate{Func: algebra.AggSum, Col: c, Name: name} }

// Avg averages a column.
func Avg(c ColRef, name string) Aggregate { return Aggregate{Func: algebra.AggAvg, Col: c, Name: name} }

// Database owns a catalog of base tables and the materialized views
// registered over them. Every Insert/Delete maintains all registered views
// incrementally, in the same call — the role the paper's triggers play.
//
// A Database is safe for concurrent use: updates (Insert, Delete, Update,
// CreateView, DDL) serialize behind a write lock, while view reads pin the
// view's current committed epoch — an immutable snapshot republished at
// every commit — so readers never block on, or observe torn state from, an
// in-flight maintenance run or WriteBatch flush. Epochs are per container:
// one read sees exactly one committed state of one view (or base table);
// two reads, or reads of two views, may straddle a commit. Reads that must
// be consistent with the base tables as a whole (Query answered from base
// tables, View.Check, Save) still take the shared read lock.
//
// Updates are atomic across the base table and every registered view:
// maintenance stages each view's mutations in an undo-logged changeset, and
// on any failure all staged changesets and the base-table delta roll back,
// so an error from Insert/Delete/Update means "nothing happened" rather
// than a half-maintained database.
type Database struct {
	mu  sync.RWMutex
	cat *rel.Catalog
	// viewMu guards only the view registry (views, order). It is never held
	// across maintenance, so view lookups and the Query view-matching scan
	// stay responsive while a flush holds mu for a whole maintenance run.
	// Lock order: mu before viewMu, never the reverse.
	viewMu sync.RWMutex
	views  map[string]*View
	order  []string
	// locks shards the flush write path by base table: independent flush
	// components acquire only their own tables' shards, so maintenance of
	// views with disjoint footprints proceeds concurrently inside a flush
	// (conflict.go). Lock order: mu before any shard, shards in sorted name
	// order (rel.TableLocks).
	locks *rel.TableLocks
}

// NewDatabase returns an empty database.
func NewDatabase() *Database {
	db := &Database{cat: rel.NewCatalog(), views: make(map[string]*View), locks: rel.NewTableLocks()}
	db.cat.PublishEpochs()
	return db
}

// Catalog exposes the underlying catalog (for tools within this module).
//
// The returned catalog is NOT synchronized with the database's locks:
// mutating it, or calling Catalog.Save on it, while statements, flushes or
// DDL run concurrently is a data race. Use the Database methods (Insert,
// Save, TableSnapshot, ...) for anything concurrent; reach for the raw
// catalog only in single-goroutine setup code such as fixtures.
func (db *Database) Catalog() *rel.Catalog { return db.cat }

// WrapCatalog adopts an existing catalog (e.g. a generated TPC-H database).
// The caller must not touch the catalog directly afterwards; see Catalog.
func WrapCatalog(cat *rel.Catalog) *Database {
	db := &Database{cat: cat, views: make(map[string]*View), locks: rel.NewTableLocks()}
	db.cat.PublishEpochs()
	return db
}

// TableSnapshot is a pinned, immutable epoch of one base table: rows and
// secondary indexes as of the last committed statement (or flush) that
// touched it. Safe for unsynchronized concurrent use.
type TableSnapshot = rel.TableSnapshot

// TableSnapshot pins the current committed epoch of a base table, or nil
// for an unknown table. Reads through the snapshot never block on, or see
// torn state from, an in-flight statement or WriteBatch flush.
func (db *Database) TableSnapshot(name string) *TableSnapshot {
	return db.cat.Snapshot(name)
}

// CreateTable creates a base table with the given unique key.
func (db *Database) CreateTable(name string, cols []Column, key ...string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	_, err := db.cat.CreateTable(name, cols, key...)
	if err == nil {
		db.cat.PublishEpochs()
	}
	return err
}

// MustCreateTable is CreateTable that panics on error, for fixtures.
func (db *Database) MustCreateTable(name string, cols []Column, key ...string) {
	if err := db.CreateTable(name, cols, key...); err != nil {
		panic(err)
	}
}

// AddForeignKey declares and enforces a foreign key; the maintenance
// planner exploits it (paper Section 6).
func (db *Database) AddForeignKey(table string, cols []string, refTable string, refCols []string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	err := db.cat.AddForeignKey(table, cols, refTable, refCols)
	if err == nil {
		db.cat.PublishEpochs()
	}
	return err
}

// CreateIndex builds a secondary hash index. It goes through the catalog so
// the version moves: a queued plan validated before the index existed must
// not reuse its validation at flush.
func (db *Database) CreateIndex(table, name string, cols ...string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.cat.Table(table) == nil {
		return fmt.Errorf("ojv: unknown table %s", table)
	}
	_, err := db.cat.CreateIndex(table, name, cols...)
	if err == nil {
		db.cat.PublishEpochs()
	}
	return err
}

// View is a registered materialized view.
type View struct {
	name string
	db   *Database
	m    *view.Maintainer
	// LastStats records the most recent maintenance run.
	LastStats *MaintStats
}

// CreateView defines, validates and materializes an SPOJ view and registers
// it for incremental maintenance.
func (db *Database) CreateView(name string, r Rel, output []ColRef, opts ...Options) (*View, error) {
	def, err := view.Define(db.cat, name, r.e, output)
	if err != nil {
		return nil, err
	}
	return db.register(name, def, opts)
}

// CreateAggregateView defines an aggregation view (SPOJ core + group-by).
func (db *Database) CreateAggregateView(name string, r Rel, spec AggSpec, opts ...Options) (*View, error) {
	def, err := view.DefineAggregate(db.cat, name, r.e, spec)
	if err != nil {
		return nil, err
	}
	return db.register(name, def, opts)
}

func (db *Database) register(name string, def *view.Definition, opts []Options) (*View, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, dup := db.views[name]; dup {
		return nil, fmt.Errorf("ojv: view %s already exists", name)
	}
	var o Options
	if len(opts) > 0 {
		o = opts[0]
	}
	m, err := view.NewMaintainer(def, o)
	if err != nil {
		return nil, err
	}
	if err := m.Materialize(); err != nil {
		return nil, err
	}
	m.EnableSnapshots()
	v := &View{name: name, db: db, m: m}
	db.viewMu.Lock()
	db.views[name] = v
	db.order = append(db.order, name)
	db.viewMu.Unlock()
	return v, nil
}

// DropView unregisters a view and releases its materialized state. It
// takes db.mu, so it serializes against statements and flushes the same
// way registration does: a drop never lands mid-flush, and the next flush
// simply plans without the view. Multi-view shared plans are rebuilt per
// flush step from the live registry, so a dropped view's subtrees vanish
// from the DAG and a new view reusing the name (with a different
// definition) contributes its own structural keys — stale aliasing is
// pinned by TestSharedPlanRebuildOnRegistryChange. Dropping an unknown
// view is a no-op returning false.
func (db *Database) DropView(name string) bool {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.viewMu.Lock()
	defer db.viewMu.Unlock()
	if _, ok := db.views[name]; !ok {
		return false
	}
	delete(db.views, name)
	for i, n := range db.order {
		if n == name {
			db.order = append(db.order[:i], db.order[i+1:]...)
			break
		}
	}
	return true
}

// View returns a registered view by name, or nil. It never blocks on an
// in-flight flush.
func (db *Database) View(name string) *View {
	db.viewMu.RLock()
	defer db.viewMu.RUnlock()
	return db.views[name]
}

// Query evaluates an SPOJ expression, answering from a registered
// materialized view when one has the same join-disjunctive normal form
// (different join orders and commuted outer joins still match; this is the
// exact-match case of the view-matching problem). The result carries the
// requested output columns; the second result names the view used, or ""
// when the query was computed from base tables.
//
// When a view answers the query, the rows come from the view's current
// committed epoch and the call never blocks on an in-flight flush; the
// base-table fallback takes the shared read lock.
func (db *Database) Query(r Rel, output []ColRef) ([]Row, string, error) {
	db.viewMu.RLock()
	views := make([]*View, 0, len(db.order))
	for _, name := range db.order {
		views = append(views, db.views[name])
	}
	db.viewMu.RUnlock()
	for _, v := range views {
		// The maintainer's stored-view pointer, definition and schema are
		// immutable after registration, so matching needs no lock.
		mv := v.m.Materialized()
		if mv == nil || !mv.Definition().Matches(r.e) {
			continue
		}
		// Project the view rows onto the requested output.
		sch := mv.Schema()
		cols := make([]int, len(output))
		usable := true
		for i, c := range output {
			p := sch.IndexOf(c.Table, c.Column)
			if p < 0 {
				usable = false
				break
			}
			cols[i] = p
		}
		if !usable {
			continue // the view matches but lacks a requested column
		}
		rows := viewRows(v)
		out := make([]Row, len(rows))
		for i, row := range rows {
			out[i] = row.Project(cols)
		}
		return out, v.name, nil
	}
	// No view: evaluate from base tables.
	db.mu.RLock()
	defer db.mu.RUnlock()
	res, err := exec.Eval(&exec.Context{Catalog: db.cat}, &algebra.Project{Input: r.e, Cols: output})
	if err != nil {
		return nil, "", err
	}
	return res.Rows, "", nil
}

// Save writes a snapshot of the base tables (schemas, keys, foreign keys,
// indexes and rows). Views are not part of the snapshot: re-create them
// after OpenSnapshot — they materialize from the restored tables.
//
// Save holds the shared read lock for the whole serialization, so it is
// safe to call while statements or WriteBatch flushes run concurrently: it
// observes a committed database state, never a mid-flush one.
func (db *Database) Save(w io.Writer) error {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.cat.Save(w)
}

// LoadCatalog replaces the database's base tables with a snapshot written
// by Save (or Catalog.Save). All constraints are re-validated during the
// load. It refuses to run while views are registered: views hold plans and
// contents derived from the old tables and cannot be retargeted in place —
// load first, then create views. On error the database is unchanged.
func (db *Database) LoadCatalog(r io.Reader) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.viewMu.RLock()
	registered := len(db.views)
	db.viewMu.RUnlock()
	if registered > 0 {
		return fmt.Errorf("ojv: LoadCatalog with %d registered view(s); load before creating views", registered)
	}
	cat, err := rel.LoadCatalog(r)
	if err != nil {
		return err
	}
	db.cat = cat
	db.cat.PublishEpochs()
	return nil
}

// OpenSnapshot restores a database written by Save. All constraints are
// re-validated during the load.
func OpenSnapshot(r io.Reader) (*Database, error) {
	cat, err := rel.LoadCatalog(r)
	if err != nil {
		return nil, err
	}
	return WrapCatalog(cat), nil
}

// Insert inserts rows into a base table and incrementally maintains every
// registered view. The call is atomic: on error neither the base table nor
// any view has changed.
func (db *Database) Insert(table string, rows []Row) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.cat.Insert(table, rows); err != nil {
		return err
	}
	return db.maintainAll(func(v *View, cs *view.Changeset) (*MaintStats, error) {
		return v.m.ApplyInsert(cs, table, rows)
	}, func() error { return db.cat.RollbackInsert(table, rows) })
}

// Delete removes the rows with the given keys from a base table and
// incrementally maintains every registered view. It returns the deleted
// rows. The call is atomic: on error neither the base table nor any view
// has changed.
func (db *Database) Delete(table string, keys [][]Value) ([]Row, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	deleted, err := db.cat.Delete(table, keys)
	if err != nil {
		return nil, err
	}
	err = db.maintainAll(func(v *View, cs *view.Changeset) (*MaintStats, error) {
		return v.m.ApplyDelete(cs, table, deleted)
	}, func() error { return db.cat.RollbackDelete(table, deleted) })
	if err != nil {
		return nil, err
	}
	return deleted, nil
}

// Update replaces a row in place (the key must not change). For view
// maintenance the update is decomposed into a delete plus an insert with
// the foreign-key optimizations disabled, per the paper's first exclusion
// in Section 6. The call is atomic: on error neither the base table nor
// any view has changed.
func (db *Database) Update(table string, key []Value, newRow Row) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	old, err := db.cat.Update(table, key, newRow)
	if err != nil {
		return err
	}
	return db.maintainAll(func(v *View, cs *view.Changeset) (*MaintStats, error) {
		return v.m.ApplyModify(cs, table, []Row{old}, []Row{newRow})
	}, func() error { return db.cat.RollbackUpdate(table, key, old) })
}

// maintainAll stages one maintenance pass per registered view and commits
// all of them together. On any failure every staged changeset rolls back in
// reverse registration order and undoBase reverts the base-table delta, so
// the database returns to its pre-call state. LastStats is only published
// for committed runs.
func (db *Database) maintainAll(apply func(v *View, cs *view.Changeset) (*MaintStats, error), undoBase func() error) error {
	type stagedRun struct {
		v     *View
		cs    *view.Changeset
		stats *MaintStats
	}
	var staged []stagedRun
	for _, name := range db.order {
		v := db.views[name]
		cs := v.m.Begin()
		stats, err := apply(v, cs)
		if err != nil {
			rbErr := v.m.RollbackStaged(cs)
			for i := len(staged) - 1; i >= 0; i-- {
				if e := staged[i].v.m.RollbackStaged(staged[i].cs); e != nil && rbErr == nil {
					rbErr = e
				}
			}
			if e := undoBase(); e != nil && rbErr == nil {
				rbErr = e
			}
			if rbErr != nil {
				return fmt.Errorf("ojv: maintaining view %s: %v (rollback also failed: %v)", name, err, rbErr)
			}
			return fmt.Errorf("ojv: maintaining view %s: %w", name, err)
		}
		staged = append(staged, stagedRun{v: v, cs: cs, stats: stats})
	}
	for _, s := range staged {
		s.v.m.CommitStaged(s.cs, s.stats)
		s.v.LastStats = s.stats
	}
	db.cat.PublishEpochs()
	return nil
}

// Name returns the view's name.
func (v *View) Name() string { return v.name }

// ViewSnapshot is a pinned, immutable epoch of one view: Rows, Len, Schema
// and TermCardinality all answer as of the moment the snapshot was taken,
// no matter how many commits or flushes happen afterwards. Snapshots are
// safe for unsynchronized concurrent use and never block maintenance.
type ViewSnapshot = view.Snapshot

// Snapshot pins the view's current committed epoch. Use it to run several
// reads against one consistent state; single reads can call Rows/Len/...
// directly, which pin an epoch per call.
func (v *View) Snapshot() *ViewSnapshot { return v.m.Snapshot() }

// viewRows reads a view's rows from its current committed epoch, falling
// back to the stored view under the read lock when snapshots are off
// (views not registered through a Database).
func viewRows(v *View) []Row {
	if s := v.m.Snapshot(); s != nil {
		return s.Rows()
	}
	v.db.mu.RLock()
	defer v.db.mu.RUnlock()
	if a := v.m.Aggregated(); a != nil {
		return a.Rows()
	}
	return v.m.Materialized().Rows()
}

// Rows returns the current view contents. For aggregation views these are
// the group rows with SQL aggregate semantics. The rows come from the
// view's current committed epoch: the call never blocks on, or observes
// partial state from, an in-flight maintenance run or WriteBatch flush.
// Returned rows must be treated as read-only.
func (v *View) Rows() []Row { return viewRows(v) }

// Len returns the number of rows (or groups) in the view as of its current
// committed epoch.
func (v *View) Len() int {
	if s := v.m.Snapshot(); s != nil {
		return s.Len()
	}
	v.db.mu.RLock()
	defer v.db.mu.RUnlock()
	if a := v.m.Aggregated(); a != nil {
		return a.Len()
	}
	return v.m.Materialized().Len()
}

// Schema returns the view's output schema (immutable after creation).
func (v *View) Schema() Schema {
	if a := v.m.Aggregated(); a != nil {
		return a.Schema()
	}
	return v.m.Materialized().Schema()
}

// TermCardinality returns the number of view rows whose source-table set is
// exactly the given set (per-term statistics, as in the paper's Table 1),
// as of the view's current committed epoch. It returns 0 for aggregation
// views.
func (v *View) TermCardinality(tables ...string) int {
	if s := v.m.Snapshot(); s != nil {
		return s.TermCardinality(tables)
	}
	v.db.mu.RLock()
	defer v.db.mu.RUnlock()
	if v.m.Materialized() == nil {
		return 0
	}
	return v.m.Materialized().TermCardinality(tables)
}

// Check verifies the view against full recomputation (two independent
// oracles); it is exposed for tests and tools.
func (v *View) Check() error {
	v.db.mu.RLock()
	defer v.db.mu.RUnlock()
	return view.Check(v.m)
}

// Maintainer exposes the underlying maintainer (for tools and benchmarks
// within this module).
func (v *View) Maintainer() *view.Maintainer { return v.m }

// CheckView compiles (or fetches from cache) the maintenance plan of every
// base table the view references, under both update contracts (plain
// insert/delete batches and decomposed modifies), and statically verifies
// each against the paper's structural invariants. It returns the first
// plan-invariant violation, with the paper section the violated invariant
// comes from. It takes the write lock: plan compilation populates the cache.
func CheckView(v *View) error {
	v.db.mu.Lock()
	defer v.db.mu.Unlock()
	return v.m.VerifyAllPlans()
}

// ExplainMaintenance renders the maintenance plan for updates to a table as
// the paper's Q1..Qn SQL-like statements (Section 7). It takes the write
// lock: rendering may compile and cache the plan.
func (v *View) ExplainMaintenance(table string, insert bool) (string, error) {
	v.db.mu.Lock()
	defer v.db.mu.Unlock()
	return v.m.MaintenanceScript(table, insert)
}

// Select returns the view rows for which the predicate is true — a simple
// query interface over the maintained view (the reason to materialize it in
// the first place). It scans the view's current committed epoch, so it
// never blocks on an in-flight flush.
func (v *View) Select(p Pred) ([]Row, error) {
	f, err := p.Compile(v.Schema())
	if err != nil {
		return nil, err
	}
	var out []Row
	for _, r := range viewRows(v) {
		if f(r) == algebra.True {
			out = append(out, r)
		}
	}
	return out, nil
}
